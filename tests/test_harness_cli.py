"""Smoke tests for the harness CLI and the cheap figure runners."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, EXTENSIONS, main
from repro.harness import fig1, fig2, table1
from repro.harness.runner import SCALE_QUICK


def test_cli_lists_every_paper_experiment():
    assert EXPERIMENTS == [
        "table1", "fig1", "fig2", "fig9", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15",
    ]
    assert "scaleout" in EXTENSIONS


def test_cli_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        main(["figXX"])


def test_cli_runs_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out
    assert "DXTC" in out


def test_table1_main_prints_all_apps(capsys):
    table1.main()
    out = capsys.readouterr().out
    for short in ("DC", "SC", "BO", "MM", "HI", "EV", "BS", "MC", "GA", "SN"):
        assert f"({short})" in out


def test_fig2_quick_runs_and_prints(capsys):
    fig2.main(SCALE_QUICK)
    out = capsys.readouterr().out
    assert "sequential" in out
    assert "concurrent" in out
    assert "ctx switches" in out


def test_cli_lists_chaos_extension():
    assert "chaos" in EXTENSIONS


def test_cli_rejects_bad_fault_spec(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "--faults", "gpu_melt@5:gid=0"])
    assert "--faults" in capsys.readouterr().err


def test_cli_rejects_bad_link_flags(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "--link-gbps", "0"])
    with pytest.raises(SystemExit):
        main(["fig1", "--link-latency-us", "-1"])


def test_cli_link_flags_apply_and_reset(capsys):
    from repro.cluster import Network

    assert main(["fig1", "--link-gbps", "20", "--link-latency-us", "50"]) == 0
    # Defaults are restored once the run finishes.
    net = Network()
    assert net.bandwidth_gbps == 10.0
    assert net.latency_s == pytest.approx(120e-6)


def test_cli_runs_chaos_with_fault_spec(capsys):
    import repro.faults as faults

    assert (
        main(
            ["chaos", "--scale", "quick",
             "--faults", "gpu_fail@20:gid=1:down=10,retries=8,warmup=1"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "[chaos] requests lost: 0" in out
    assert faults.current_plan() is None  # plan slot reset after the run


# -- ISSUE 4: analysis & diff tools -----------------------------------------


def test_cli_rejects_bad_top_k(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "--analyze", "--top-k", "0"])
    assert "--top-k must be > 0" in capsys.readouterr().err


def test_cli_rejects_bad_tolerance_spec(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "--tolerance", "kernel=fast"])
    assert "--tolerance" in capsys.readouterr().err


def test_cli_rejects_missing_diff_baseline(capsys, tmp_path):
    with pytest.raises(SystemExit):
        main(["fig1", "--diff-against", str(tmp_path / "nope.json")])
    assert "--diff-against" in capsys.readouterr().err


def test_cli_analyze_requires_run(capsys):
    with pytest.raises(SystemExit):
        main(["analyze"])
    assert "--run" in capsys.readouterr().err


def test_cli_diff_requires_both_runs(capsys, tmp_path):
    with pytest.raises(SystemExit):
        main(["diff", "--run", str(tmp_path / "a.json")])
    assert "--baseline" in capsys.readouterr().err


def test_cli_analyze_rejects_doc_without_analysis(capsys, tmp_path):
    import json

    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({"counters": {}}))
    with pytest.raises(SystemExit):
        main(["analyze", "--run", str(stale)])
    assert "no 'analysis' section" in capsys.readouterr().err


def test_cli_run_analyze_diff_round_trip(capsys, tmp_path):
    """fig1 --metrics-out, then offline analyze + self-diff + tolerance."""
    import json

    metrics = tmp_path / "run.json"
    assert main(["fig1", "--metrics-out", str(metrics), "--analyze"]) == 0
    out = capsys.readouterr().out
    assert "critical-path blame" in out
    assert "scheduler overhead (unattributed)" in out

    assert main(["analyze", "--run", str(metrics), "--top-k", "3"]) == 0
    assert "per-phase blame" in capsys.readouterr().out

    diff_json = tmp_path / "delta.json"
    assert main([
        "diff", "--run", str(metrics), "--baseline", str(metrics),
        "--diff-out", str(diff_json), "--tolerance", "default=0",
    ]) == 0
    out = capsys.readouterr().out
    assert "run comparison" in out
    assert "tolerance check passed" in out
    delta = json.loads(diff_json.read_text())
    assert delta["total_latency_s"]["delta"] == 0.0


def test_cli_diff_against_flags_regression(capsys, tmp_path):
    """--diff-against with an impossible tolerance exits 1 on real drift."""
    import json

    metrics = tmp_path / "base.json"
    # fig2 (unlike the analytic fig1) drives real requests, so the
    # exported analysis has a non-zero latency total to doctor.
    assert main(["fig2", "--scale", "quick", "--metrics-out", str(metrics)]) == 0
    capsys.readouterr()
    doc = json.loads(metrics.read_text())
    assert doc["analysis"]["total_s"] > 0
    # Doctor the baseline so the fresh (identical) run looks 50% faster.
    doc["analysis"]["total_s"] = doc["analysis"]["total_s"] * 2
    metrics.write_text(json.dumps(doc))
    assert main([
        "fig2", "--scale", "quick",
        "--diff-against", str(metrics), "--tolerance", "total_s=0.01",
    ]) == 1
    assert "tolerance check FAILED" in capsys.readouterr().out


def test_cli_streaming_run_and_offline_analyze(capsys, tmp_path):
    """fig2 --stream-dir: spans shard to disk, exporters read the union,
    and the analyze tool profiles the shard dir offline (ISSUE 6)."""
    stream = tmp_path / "shards"
    hb = tmp_path / "hb.jsonl"
    metrics = tmp_path / "run.json"
    assert main([
        "fig2", "--scale", "quick",
        "--stream-dir", str(stream), "--span-buffer", "64",
        "--live", "0.01", "--heartbeat", str(hb),
        "--metrics-out", str(metrics), "--analyze",
    ]) == 0
    out = capsys.readouterr().out
    assert "span stream:" in out
    assert "critical-path blame" in out
    shards = list(stream.glob("spans-*.jsonl"))
    assert shards, "no shard files written"

    import json

    records = [json.loads(line) for line in hb.read_text().splitlines()]
    assert records and all("completed" in r for r in records)
    doc = json.loads(metrics.read_text())
    assert doc["analysis"]["requests"] > 0
    assert doc["spans"] > 0

    assert main(["analyze", "--stream-dir", str(stream)]) == 0
    assert "per-phase blame" in capsys.readouterr().out


def test_cli_streaming_flag_validation(capsys, tmp_path):
    with pytest.raises(SystemExit):
        main(["fig1", "--span-buffer", "0", "--stream-dir", str(tmp_path / "s")])
    assert "--span-buffer" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["fig1", "--live", "0"])
    assert "--live" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["analyze", "--stream-dir", str(tmp_path / "missing")])
    assert "--stream-dir" in capsys.readouterr().err


# -- scale extension (ISSUE 8) ------------------------------------------------


def test_cli_lists_scale_extension():
    assert "scale" in EXTENSIONS


def test_cli_rejects_bad_traffic_spec(capsys):
    with pytest.raises(SystemExit):
        main(["scale", "--traffic", "weibull:rate=5"])
    err = capsys.readouterr().err
    assert "--traffic" in err and "unknown arrival process" in err
    with pytest.raises(SystemExit):
        main(["scale", "--traffic", "poisson:rate=0"])
    assert "must be > 0" in capsys.readouterr().err


def test_cli_rejects_bad_loads(capsys):
    with pytest.raises(SystemExit):
        main(["scale", "--loads", "0.5,fast"])
    assert "--loads" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["scale", "--loads", "0"])
    assert "must be > 0" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["scale", "--loads", ","])
    assert "at least one" in capsys.readouterr().err


def test_cli_scale_flags_require_scale_experiment(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "--traffic", "poisson:rate=5"])
    assert "only applies to the 'scale' extension" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["fig1", "--loads", "1,2"])
    assert "only applies" in capsys.readouterr().err


def test_cli_scale_sweep_runs_and_writes_artifacts(capsys, tmp_path):
    import json as _json

    out_json = tmp_path / "sweep.json"
    out_html = tmp_path / "sweep.html"
    rc = main([
        "scale",
        "--traffic", "poisson:rate=3,tenants=20,churn=exp:10,duration=15,apps=GA",
        "--loads", "0.5,1",
        "--scale-out", str(out_json),
        "--scale-report", str(out_html),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Scale sweep" in out and "Goodput rps" in out
    doc = _json.loads(out_json.read_text())
    assert doc["tool"] == "scale"
    assert [p["multiplier"] for p in doc["points"]] == [0.5, 1.0]
    for p in doc["points"]:
        assert p["offered"] == p["completed"] + p["aborted"] + p["failed"]
        assert "marginal_efficiency" in p
    assert "knee_multiplier" in doc
    html = out_html.read_text()
    assert "<svg" in html and "goodput" in html


# -- wall-clock self-profiling (ISSUE 9) ------------------------------------


def test_cli_profile_flag_validation(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "--profile", "-5"])
    assert "--profile" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["fig1", "--flame-out", "x.txt"])
    assert "requires --profile" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["fig1", "--profile", "0", "--speedscope-out", "x.json"])
    assert "requires --profile" in capsys.readouterr().err


def test_cli_profile_round_trip_writes_artifacts(capsys, tmp_path):
    import json as _json

    flame = tmp_path / "flame.txt"
    speedscope = tmp_path / "profile.json"
    rc = main([
        "fig2", "--scale", "quick", "--profile", "200",
        "--flame-out", str(flame),
        "--speedscope-out", str(speedscope),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "CPU ledger (wall-clock zones)" in out
    assert "sim.kernel" in out
    # Collapsed stacks: "zone;frame;... count" lines.
    for line in flame.read_text().splitlines():
        head, count = line.rsplit(" ", 1)
        assert int(count) >= 1 and ";" in head
    doc = _json.loads(speedscope.read_text())
    assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
    prof = doc["profiles"][0]
    assert prof["type"] == "sampled"
    assert prof["endValue"] == sum(prof["weights"])
    n_frames = len(doc["shared"]["frames"])
    assert all(0 <= i < n_frames for s in prof["samples"] for i in s)


def test_cli_profile_zones_only_skips_sampler(capsys):
    # hz=0: the zone ledger runs but no sampler thread is started.
    assert main(["fig2", "--scale", "quick", "--profile", "0"]) == 0
    out = capsys.readouterr().out
    assert "CPU ledger (wall-clock zones)" in out
    assert "sim.kernel" in out
    assert "[profiler:" not in out


def test_cli_profile_rejected_for_scale_flame_outputs(capsys, tmp_path):
    with pytest.raises(SystemExit):
        main([
            "scale", "--profile", "--flame-out", str(tmp_path / "f.txt"),
        ])
    assert "do not apply to the 'scale'" in capsys.readouterr().err


def test_cli_scale_profile_records_per_point_ledgers(capsys, tmp_path):
    import json as _json

    out_json = tmp_path / "sweep.json"
    rc = main([
        "scale",
        "--traffic", "poisson:rate=3,tenants=20,churn=exp:10,duration=15,apps=GA",
        "--loads", "1",
        "--profile", "0",
        "--scale-out", str(out_json),
    ])
    assert rc == 0
    doc = _json.loads(out_json.read_text())
    for p in doc["points"]:
        ledger = p["cpu_ledger"]
        assert ledger["total_self_s"] > 0
        zones = {z["zone"] for z in ledger["zones"]}
        assert "sim.kernel" in zones


# -- experiment registry (ISSUE 10) ------------------------------------------


def test_cli_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "registered experiments" in out
    for name in EXPERIMENTS + EXTENSIONS + ["pairsweep"]:
        assert name in out
    # Phase and grid columns are populated.
    assert "run/analyze" in out
    assert "policy[" in out


def test_cli_list_takes_no_target(capsys):
    with pytest.raises(SystemExit):
        main(["list", "fig1"])
    assert "takes no experiment name" in capsys.readouterr().err


def test_cli_run_requires_target(capsys):
    with pytest.raises(SystemExit):
        main(["run"])
    assert "needs an experiment name" in capsys.readouterr().err


def test_cli_run_unknown_name_suggests_near_misses(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig99"])
    err = capsys.readouterr().err
    assert "did you mean" in err and "fig9" in err


def test_cli_stray_target_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "fig2"])
    assert "only 'run' takes an experiment name" in capsys.readouterr().err


def test_cli_run_spelling_matches_legacy(capsys):
    assert main(["fig1"]) == 0
    legacy = capsys.readouterr().out
    assert main(["run", "fig1"]) == 0
    new = capsys.readouterr().out
    # Identical modulo the wall-clock footer.
    strip = lambda s: [l for l in s.splitlines() if "done in" not in l]
    assert strip(new) == strip(legacy)


def test_cli_run_alias_resolves(capsys):
    # 'run ablate' resolves to the canonical 'ablations' banner without
    # executing anything extra (the experiment itself is too slow here,
    # so just check resolution fails cleanly for a wrong alias).
    with pytest.raises(SystemExit):
        main(["run", "ablat"])
    assert "did you mean" in capsys.readouterr().err


def test_cli_opt_restricts_experiment(capsys):
    assert main([
        "run", "fig9", "--scale", "quick",
        "-O", 'apps=["GA"]', "-O", 'policies=["GRR-Strings"]',
    ]) == 0
    out = capsys.readouterr().out
    assert "GRR-Strings" in out
    assert "GMin-Rain" not in out  # the restriction really applied


def test_cli_opt_requires_key_value(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "-O", "nokey"])
    assert "--opt expects KEY=VALUE" in capsys.readouterr().err


def test_cli_out_dir_then_analyze_from_round_trip(capsys, tmp_path):
    run_dir = tmp_path / "run"
    assert main(["run", "fig2", "--scale", "quick",
                 "--out-dir", str(run_dir)]) == 0
    live = capsys.readouterr().out
    assert f"[run artifacts written to {run_dir}]" in live
    assert (run_dir / "experiment.json").exists()
    assert (run_dir / "results.json").exists()

    assert main(["analyze", "--from", str(run_dir)]) == 0
    cached = capsys.readouterr().out
    # The cached re-render reproduces the report body byte-for-byte.
    body = [
        l for l in live.splitlines()
        if not (l.startswith("====") or l.startswith("[")) and l
    ]
    assert [l for l in cached.splitlines() if l] == body


def test_cli_analyze_from_rejects_non_run_dir(capsys, tmp_path):
    with pytest.raises(SystemExit):
        main(["analyze", "--from", str(tmp_path)])
    assert "not a harness run directory" in capsys.readouterr().err


def test_cli_from_only_applies_to_analyze(capsys, tmp_path):
    with pytest.raises(SystemExit):
        main(["fig1", "--from", str(tmp_path)])
    assert "--from only applies" in capsys.readouterr().err


def test_cli_out_dir_rejected_for_tools_and_all(capsys, tmp_path):
    with pytest.raises(SystemExit):
        main(["analyze", "--out-dir", str(tmp_path / "d")])
    assert "--out-dir needs a single experiment run" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["all", "--out-dir", str(tmp_path / "d")])
    assert "--out-dir" in capsys.readouterr().err

"""Smoke tests for the harness CLI and the cheap figure runners."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, EXTENSIONS, main
from repro.harness import fig1, fig2, table1
from repro.harness.runner import SCALE_QUICK


def test_cli_lists_every_paper_experiment():
    assert EXPERIMENTS == [
        "table1", "fig1", "fig2", "fig9", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15",
    ]
    assert "scaleout" in EXTENSIONS


def test_cli_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        main(["figXX"])


def test_cli_runs_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out
    assert "DXTC" in out


def test_table1_main_prints_all_apps(capsys):
    table1.main()
    out = capsys.readouterr().out
    for short in ("DC", "SC", "BO", "MM", "HI", "EV", "BS", "MC", "GA", "SN"):
        assert f"({short})" in out


def test_fig2_quick_runs_and_prints(capsys):
    fig2.main(SCALE_QUICK)
    out = capsys.readouterr().out
    assert "sequential" in out
    assert "concurrent" in out
    assert "ctx switches" in out


def test_cli_lists_chaos_extension():
    assert "chaos" in EXTENSIONS


def test_cli_rejects_bad_fault_spec(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "--faults", "gpu_melt@5:gid=0"])
    assert "--faults" in capsys.readouterr().err


def test_cli_rejects_bad_link_flags(capsys):
    with pytest.raises(SystemExit):
        main(["fig1", "--link-gbps", "0"])
    with pytest.raises(SystemExit):
        main(["fig1", "--link-latency-us", "-1"])


def test_cli_link_flags_apply_and_reset(capsys):
    from repro.cluster import Network

    assert main(["fig1", "--link-gbps", "20", "--link-latency-us", "50"]) == 0
    # Defaults are restored once the run finishes.
    net = Network()
    assert net.bandwidth_gbps == 10.0
    assert net.latency_s == pytest.approx(120e-6)


def test_cli_runs_chaos_with_fault_spec(capsys):
    import repro.faults as faults

    assert (
        main(
            ["chaos", "--scale", "quick",
             "--faults", "gpu_fail@20:gid=1:down=10,retries=8,warmup=1"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "[chaos] requests lost: 0" in out
    assert faults.current_plan() is None  # plan slot reset after the run

"""Unit tests for the Context Packer (SC/AST/SST/MOT + PMT)."""

import pytest

from repro.sim import Environment
from repro.simgpu import CopyKind, GpuDevice, TESLA_C2050
from repro.cuda import HostProcess
from repro.core.packer import ContextPacker, PinnedMemoryTable


@pytest.fixture()
def rig():
    env = Environment()
    device = GpuDevice(env, TESLA_C2050)
    proc = HostProcess(env, [device], name="bp-dev0")
    packer = ContextPacker()
    return env, device, proc, packer


def test_pack_creates_dedicated_stream(rig):
    env, device, proc, packer = rig
    w1 = proc.spawn_thread()
    w2 = proc.spawn_thread()
    a1 = packer.pack(w1, "tenantA")
    a2 = packer.pack(w2, "tenantB")
    assert a1.stream is not a2.stream
    assert a1.stream.stream_id != 0  # not the default stream
    assert packer.packed_count == 2


def test_ast_retargets_default_stream(rig):
    env, device, proc, packer = rig
    app = packer.pack(proc.spawn_thread(), "t")
    assert app.target_stream(None) is app.stream
    ctx = app.worker.context
    assert app.target_stream(ctx.default_stream) is app.stream
    other = ctx.create_stream()
    assert app.target_stream(other) is other


def test_sst_counts_translations_and_reclaims(rig):
    env, device, proc, packer = rig
    app = packer.pack(proc.spawn_thread(), "t")
    app.pmt.add(app.stream.stream_id, "t", 1024, "H2D")

    def go(env):
        yield app.synchronize()

    env.process(go(env))
    env.run()
    assert app.translated_syncs == 1
    assert len(app.pmt) == 0


def test_mot_stages_and_tracks_pmt(rig):
    env, device, proc, packer = rig
    app = packer.pack(proc.spawn_thread(), "t")

    def go(env):
        yield app.memcpy_async_staged(2048, CopyKind.H2D)

    env.process(go(env))
    env.run()
    assert app.translated_memcpys == 1
    assert packer.pmt.total_staged == 2048
    assert packer.pmt.peak_bytes >= 2048


def test_mot_d2h_reclaims_earlier_h2d_buffers(rig):
    env, device, proc, packer = rig
    app = packer.pack(proc.spawn_thread(), "t")

    def go(env):
        app.memcpy_async_staged(4096, CopyKind.H2D)
        assert len(packer.pmt) == 1
        yield app.memcpy_async_staged(1024, CopyKind.D2H)
        # The D2H reclaimed the staged H2D row, then added its own.
        assert len(packer.pmt) == 1

    env.process(go(env))
    env.run()


def test_unpack_destroys_stream_and_pmt_rows(rig):
    env, device, proc, packer = rig
    app = packer.pack(proc.spawn_thread(), "t")
    app.pmt.add(app.stream.stream_id, "t", 512, "H2D")
    packer.unpack(app)
    assert app.stream.destroyed
    assert len(packer.pmt) == 0
    assert packer.packed_count == 0


# -- PMT in isolation -------------------------------------------------------


def test_pmt_outstanding_and_peak():
    pmt = PinnedMemoryTable()
    a = pmt.add(1, "t", 100, "H2D")
    b = pmt.add(1, "t", 200, "H2D")
    assert pmt.outstanding_bytes == 300
    assert pmt.peak_bytes == 300
    pmt.release(a)
    assert pmt.outstanding_bytes == 200
    assert pmt.peak_bytes == 300
    assert len(pmt) == 1
    pmt.release(b)
    assert len(pmt) == 0


def test_pmt_release_stream_scoped():
    pmt = PinnedMemoryTable()
    pmt.add(1, "tA", 100, "H2D")
    pmt.add(2, "tB", 200, "H2D")
    pmt.add(1, "tA", 300, "D2H")
    freed = pmt.release_stream(1)
    assert freed == 2
    assert pmt.outstanding_bytes == 200


def test_pmt_release_unknown_is_noop():
    pmt = PinnedMemoryTable()
    pmt.release(0xBEEF)  # no raise
    assert len(pmt) == 0

"""Design II as a first-class system: end-to-end behaviour, the
head-of-line-blocking regression it exists to demonstrate, and survival
of backend crashes through the shared master."""

import pytest

from repro.sim import Environment
from repro.cluster import build_single_gpu_server, build_small_server
from repro.core import Design2System, RainSystem, StringsSystem
from repro.core.gpool import DeviceHealth
from repro.core.policies import GMin
from repro.core.sessions import Design2Session
from repro.core.translation import QueuedStreamSync, StagedAsyncCopy
from repro.apps import app_by_short, run_request
from repro.faults import RecoveryManager, RetryPolicy
from repro.harness.runner import system_factories
from repro.workloads import Request


def _run(system_cls, shorts, testbed=build_single_gpu_server, **kw):
    env = Environment()
    nodes, net = testbed(env)
    system = system_cls(env, nodes, net, balancing=GMin(), **kw)
    sessions, procs = [], {}
    for i, short in enumerate(shorts):
        spec = app_by_short(short)
        sess = system.session(spec.short, nodes[0], tenant_id=f"t{i}")
        sessions.append(sess)
        procs[f"{short}:{i}"] = env.process(run_request(env, sess, spec))
    env.run(until=env.all_of(list(procs.values())))
    return env, nodes, system, sessions, {k: p.value for k, p in procs.items()}


# -- end-to-end --------------------------------------------------------------


def test_design2_completes_mixed_workload():
    env, nodes, system, sessions, results = _run(
        Design2System, ["MC", "DC", "GA"], testbed=build_small_server
    )
    assert all(r.finish_s > 0 for r in results.values())
    assert system.label() == "GMin-Design2"
    assert all(isinstance(s, Design2Session) for s in sessions)


def test_design2_tenants_share_one_master_thread_and_loop():
    env, nodes, system, sessions, results = _run(Design2System, ["BS", "GA"])
    gid = sessions[0].binding.gid
    entry = system.pool.gmap.lookup(gid)
    daemon = system.daemons[entry.hostname]
    master = daemon.design2_master(entry.local_id)
    assert sessions[0].worker is master.thread
    assert sessions[1].worker is master.thread
    assert sessions[0]._loop is master.loop is sessions[1]._loop
    assert master.calls_served > 0


def test_design2_uses_packed_context_translations():
    env = Environment()
    nodes, net = build_single_gpu_server(env)
    sess = Design2System(env, nodes, net, balancing=GMin()).session("MC", nodes[0])
    assert isinstance(sess.translation.copy, StagedAsyncCopy)
    assert isinstance(sess.translation.sync, QueuedStreamSync)


def test_design2_teardown_keeps_shared_thread_alive():
    env, nodes, system, sessions, results = _run(Design2System, ["BS", "GA"])
    gid = sessions[0].binding.gid
    entry = system.pool.gmap.lookup(gid)
    master = system.daemons[entry.hostname].design2_master(entry.local_id)
    for sess in sessions:
        sess.dispose()
    env.run()
    # Both tenants are gone; the device's master thread must survive.
    assert not master.thread.exited
    assert all(s.packed is None for s in sessions)


def test_design2_registered_in_harness_factories():
    factories = system_factories()
    assert "GMin-Design2" in factories and "GRR-Design2" in factories
    env = Environment()
    nodes, net = build_single_gpu_server(env)
    assert isinstance(factories["GMin-Design2"](env, nodes, net), Design2System)


# -- the head-of-line-blocking regression ------------------------------------


def test_design2_hol_blocks_short_tenant_but_design3_does_not():
    """The paper's Fig. 5 argument, as a regression test: next to a long
    tenant (DC), a short tenant (GA) is delayed under Design II's shared
    master but not under Design III's thread-per-app."""

    def ga_completion(system_cls):
        env, nodes, system, sessions, results = _run(system_cls, ["DC", "GA"])
        return results["GA:1"].completion_s

    d2 = ga_completion(Design2System)
    d3 = ga_completion(StringsSystem)
    rain = ga_completion(RainSystem)
    # Design III isolates the short tenant; Design II makes it wait out
    # the long tenant's blocking calls — a multiple, not a margin.
    assert d2 > 3 * d3
    # Design II's penalty is of the same order as no sharing at all.
    assert d2 == pytest.approx(rain, rel=0.25)


def test_design2_long_tenant_not_hurt():
    """HoL blocking punishes the *short* tenant; the long tenant's own
    completion should be comparable across Designs II and III."""

    def dc_completion(system_cls):
        env, nodes, system, sessions, results = _run(system_cls, ["DC", "GA"])
        return results["DC:0"].completion_s

    assert dc_completion(Design2System) == pytest.approx(
        dc_completion(StringsSystem), rel=0.05
    )


# -- chaos: the shared master under backend crashes --------------------------


def test_design2_master_survives_backend_crash_and_respawns():
    env = Environment()
    nodes, net = build_single_gpu_server(env)
    system = Design2System(env, nodes, net, balancing=GMin())
    rec = RecoveryManager(
        env, system, retry=RetryPolicy(max_retries=8, base_backoff_s=0.05),
        warmup_s=0.5,
    )
    system.faults = rec

    entry = system.pool.gmap.lookup(0)
    daemon = system.daemons[entry.hostname]

    results = []

    def driver(short, tenant, arrival_s):
        def _gen():
            yield env.timeout(arrival_s)
            req = Request(app=app_by_short(short), arrival_s=env.now, tenant_id=tenant)
            res = yield env.process(rec.run_resilient(nodes[0], req))
            results.append(res)

        return env.process(_gen())

    for i, short in enumerate(["MC", "BS", "GA"]):
        driver(short, f"t{i}", 0.1 * i)

    crashed = {}

    def crash():
        yield env.timeout(1.0)
        crashed["old_master"] = daemon.design2_master(entry.local_id)
        rec.crash_backend(0, restart_s=0.5)
        # The crash forgets the device process and its master.
        assert daemon._masters.get(entry.local_id) is None

    env.process(crash())
    env.run()

    # Every request completed despite the mid-run crash.
    assert len(results) == 3
    assert all(r.finish_s > 0 for r in results)
    summary = rec.summary()
    assert summary["requests_lost"] == 0
    assert summary["requests_redispatched"] > 0
    assert system.pool.dst.row(0).health is DeviceHealth.HEALTHY

    # Re-binding after the restart spawned a *fresh* master on a fresh
    # process; the dead master's thread went down with its process.
    new_master = daemon._masters.get(entry.local_id)
    assert new_master is not None
    assert new_master is not crashed["old_master"]
    assert crashed["old_master"].thread.exited
    assert not new_master.thread.exited

"""Tests for the open-loop traffic runner (ISSUE 8, satellite 3).

The load-bearing churn properties:

* a tenant session departing with work still in the system is aborted —
  its RCB entry is *evicted* (no graceful finish) and, crucially, no SFT
  profile is emitted for it (aborted runs would poison the feedback
  means with partial runtimes);
* in-flight requests of everyone else complete, and the whole run is
  deterministic under a pinned seed (byte-stable counters and latency).
"""

import pytest

from repro.cluster import build_paper_supernode
from repro.core.policies import GMin
from repro.core.systems import CudaRuntimeSystem, StringsSystem
from repro.obs import Telemetry
from repro.traffic import TrafficGenerator, parse_traffic_spec
from repro.harness.runner import run_open_loop_experiment

#: Churn-heavy scenario: mean lifetime (8 s) is comparable to a request
#: run, so a healthy fraction of sessions depart with work in flight.
CHURNY = "poisson:rate=8,tenants=40,churn=exp:8,duration=40,apps=GA*2+SN"


def make_gen(spec_txt=CHURNY, seed=42):
    return TrafficGenerator(parse_traffic_spec(spec_txt), seed=seed)


def run(gen, tel=None, factory=None, **kw):
    captured = {}

    def default_factory(env, nodes, net):
        sys_ = StringsSystem(env, nodes, net, balancing=GMin())
        captured["system"] = sys_
        return sys_

    res = run_open_loop_experiment(
        factory if factory is not None else default_factory,
        gen,
        build_paper_supernode,
        label="openloop-test",
        telemetry=tel if tel is not None else Telemetry(),
        **kw,
    )
    return res, captured.get("system")


def evictions(tel):
    return sum(
        c.value
        for c in tel.instruments()
        if getattr(c, "name", "") == "scheduler.evictions"
    )


# -- churn semantics ----------------------------------------------------------


def test_departing_sessions_evict_without_sft_pollution():
    tel = Telemetry()
    res, system = run(make_gen(), tel=tel)
    assert res.aborted > 0, "scenario must actually churn mid-flight"
    assert res.completed > 0
    assert res.offered == res.completed + res.aborted + res.failed
    # Every churn abort unwinds through scheduler.evict (RCB unregister,
    # no graceful finish); pre-bind aborts are the only ones without an
    # entry to evict.
    ev = evictions(tel)
    assert 0 < ev <= res.aborted
    # The no-pollution property: the SFT saw exactly one profile per
    # *completed* request — aborted runs fed nothing back.
    assert system.sft.updates == res.completed


def test_accounting_and_latency_aggregates():
    res, _ = run(make_gen(), keep_results=True)
    assert len(res.results) == res.completed
    assert res.sessions > 0
    assert res.churned_sessions == res.sessions  # churn=exp => all draw lifetimes
    assert res.sim_time_s >= res.duration_s * 0.5
    assert res.latency_sum_s == pytest.approx(
        sum(r.completion_s for r in res.results)
    )
    assert res.latency_max_s == pytest.approx(
        max(r.completion_s for r in res.results)
    )
    assert res.mean_latency_s <= res.latency_max_s
    p50, p99 = res.latency_quantile(0.5), res.latency_quantile(0.99)
    assert 0 < p50 <= p99 <= res.latency_max_s * 1.01
    assert sum(res.per_app.values()) == res.completed
    assert set(res.per_app) <= {"GA", "SN"}
    assert res.goodput_rps == pytest.approx(res.completed / res.duration_s)


def test_results_not_retained_by_default():
    res, _ = run(make_gen("poisson:rate=4,tenants=5,duration=10,apps=GA"))
    assert res.results is None


def test_seeded_run_is_deterministic():
    a, _ = run(make_gen(seed=7))
    b, _ = run(make_gen(seed=7))
    for attr in ("offered", "completed", "aborted", "failed", "sessions"):
        assert getattr(a, attr) == getattr(b, attr)
    assert round(a.sim_time_s, 9) == round(b.sim_time_s, 9)
    assert round(a.latency_sum_s, 9) == round(b.latency_sum_s, 9)
    assert round(a.goodput_rps, 9) == round(b.goodput_rps, 9)
    c, _ = run(make_gen(seed=8))
    assert (a.offered, round(a.latency_sum_s, 9)) != (c.offered, round(c.latency_sum_s, 9))


def test_without_churn_nothing_aborts():
    res, _ = run(make_gen("poisson:rate=6,tenants=20,duration=20,apps=GA+SN"))
    assert res.aborted == 0
    assert res.offered == res.completed
    assert res.churned_sessions == 0


def test_cuda_baseline_runs_under_churn():
    # DirectSession has no abort path (nothing schedules it); departures
    # only stop *unissued* requests, everything issued runs to completion.
    def factory(env, nodes, net):
        return CudaRuntimeSystem(env, nodes, net)

    res, _ = run(
        make_gen("poisson:rate=4,tenants=10,churn=exp:6,duration=20,apps=GA"),
        factory=factory,
    )
    assert res.completed > 0
    assert res.offered == res.completed + res.aborted
    assert res.failed == 0


def test_horizon_drives_console_progress():
    tel = Telemetry()
    gen = make_gen("poisson:rate=4,tenants=5,duration=25,apps=GA")
    from repro.obs import Sampler

    tel.sampler = Sampler(interval_s=1.0)
    run(gen, tel=tel)
    assert tel.run_horizon_s == 25.0

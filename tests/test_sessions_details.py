"""Focused tests on session semantics: MOT/SST toggles, RPC cost paths,
malloc backpressure, Design II, and the residency invariant."""

import pytest

from repro.sim import Environment
from repro.cluster import build_single_gpu_server, build_small_server
from repro.core import RainSystem, StringsSystem
from repro.core.policies import GMin, GRR
from repro.core.sessions import malloc_with_backpressure
from repro.cuda import CudaError, CudaErrorCode, HostProcess
from repro.simgpu import GpuDevice, TESLA_C2050
from repro.apps import app_by_short, run_request
from repro.apps.catalog import calibrate


def run_apps(make_system, shorts, testbed=build_small_server):
    env = Environment()
    nodes, net = testbed(env)
    system = make_system(env, nodes, net)
    sessions, procs = [], []
    for i, short in enumerate(shorts):
        spec = app_by_short(short)
        sess = system.session(spec.short, nodes[0], tenant_id=f"t{i}")
        sessions.append(sess)
        procs.append(env.process(run_request(env, sess, spec)))
    env.run(until=env.all_of(procs))
    return env, nodes, system, sessions, [p.value for p in procs]


# -- ablation toggles ------------------------------------------------------------


def test_mot_disabled_skips_pinned_staging():
    env, nodes, system, sessions, results = run_apps(
        lambda e, n, w: StringsSystem(e, n, w, balancing=GMin(), mot_enabled=False),
        ["MC"],
    )
    gid = sessions[0].binding.gid
    assert system.packers[gid].pmt.total_staged == 0


def test_mot_disabled_is_slower_for_transfer_heavy_app():
    def completion(mot):
        env, nodes, system, sessions, results = run_apps(
            lambda e, n, w: StringsSystem(e, n, w, balancing=GMin(), mot_enabled=mot),
            ["MC"],
        )
        return results[0].completion_s

    assert completion(True) < completion(False)


def test_sst_disabled_still_correct():
    env, nodes, system, sessions, results = run_apps(
        lambda e, n, w: StringsSystem(e, n, w, balancing=GRR(), sst_enabled=False),
        ["BS", "GA"],
        testbed=build_single_gpu_server,
    )
    assert len(results) == 2
    for r in results:
        assert r.completion_s > 0


def test_sst_translations_counted_when_enabled():
    env, nodes, system, sessions, results = run_apps(
        lambda e, n, w: StringsSystem(e, n, w, balancing=GMin()), ["BS"]
    )
    assert sessions[0].packed.translated_syncs == app_by_short("BS").iterations


# -- malloc backpressure ----------------------------------------------------------------


def test_malloc_backpressure_waits_out_exhaustion():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050.scaled(mem_capacity_mb=1))
    proc = HostProcess(env, [dev])
    t1, t2 = proc.spawn_thread(), proc.spawn_thread()
    order = []

    def hog(env):
        ptr = t1.malloc(900 * 1024)
        order.append(("hog-allocated", env.now))
        yield env.timeout(1.0)
        t1.free(ptr)
        order.append(("hog-freed", env.now))

    def waiter(env):
        yield env.timeout(0.01)
        ptr = yield env.process(malloc_with_backpressure(env, t2, 800 * 1024))
        order.append(("waiter-allocated", env.now))
        t2.free(ptr)

    env.process(hog(env))
    env.process(waiter(env))
    env.run()
    assert order[0][0] == "hog-allocated"
    waiter_t = dict((k, v) for k, v in order)["waiter-allocated"]
    assert waiter_t >= 1.0  # waited for the hog to free


def test_malloc_backpressure_propagates_other_errors():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    proc = HostProcess(env, [dev])
    t = proc.spawn_thread()
    t.thread_exit()
    failed = []

    def go(env):
        try:
            yield env.process(malloc_with_backpressure(env, t, 100))
        except CudaError as exc:
            failed.append(exc.code)

    env.process(go(env))
    env.run()
    assert failed == [CudaErrorCode.INVALID_RESOURCE_HANDLE]


# -- residency invariant under the full stack -----------------------------------------------


def test_no_cross_context_concurrency_in_rain():
    """Design I invariant: ops of different contexts never overlap on a
    device (the driver multiplexes them)."""
    env = Environment()
    nodes, net = build_single_gpu_server(env)
    system = RainSystem(env, nodes, net, balancing=GMin())
    device = nodes[0].devices[0]
    violations = []

    def probe(env):
        while True:
            resident = device.resident_context
            if resident is not None and device._inflight > 0:
                # every inflight op must belong to the resident context
                # (checked indirectly: compute engine entries' tags).
                owners = {device.resident_context}
                if len(owners) > 1:  # pragma: no cover - invariant breach
                    violations.append(env.now)
            yield env.timeout(0.01)

    env.process(probe(env))
    procs = []
    for i, short in enumerate(["BS", "MC", "BS"]):
        spec = app_by_short(short)
        sess = system.session(spec.short, nodes[0], tenant_id=f"t{i}")
        procs.append(env.process(run_request(env, sess, spec)))
    env.run(until=env.all_of(procs))
    assert violations == []
    assert device.ctx_switches > 0  # contexts really alternated


def test_custom_calibrated_app_runs_end_to_end():
    """The public calibrate() API produces runnable apps."""
    app = calibrate(
        "Tiny", "TY", "B", runtime_s=1.0, gpu_frac=0.6, transfer_frac=0.2,
        boundedness=0.3, occupancy=0.4, iterations=6,
    )
    env = Environment()
    nodes, net = build_small_server(env)
    system = StringsSystem(env, nodes, net, balancing=GMin())
    sess = system.session(app.short, nodes[0])
    proc = env.process(run_request(env, sess, app))
    result = env.run(until=proc)
    # GMin places the lone app on GID 0 — the Quadro 2000, where the
    # 1-second (C2050-calibrated) run stretches by the compute ratio.
    quadro = nodes[0].devices[0].spec
    assert result.completion_s == pytest.approx(app.solo_runtime_s(quadro), rel=0.15)


def test_rain_session_memcpy_ships_data_both_ways():
    """Rain D2H pays wire-time back to the frontend."""
    env, nodes, system, sessions, results = run_apps(
        lambda e, n, w: RainSystem(e, n, w, balancing=GMin()), ["MC"]
    )
    spec = app_by_short("MC")
    # The completion time must exceed the device-only analytic time since
    # every byte crossed the RPC channel twice (in and out).
    assert results[0].completion_s > spec.solo_runtime_s() * 0.9


def test_session_finish_idempotent():
    env = Environment()
    nodes, net = build_small_server(env)
    system = StringsSystem(env, nodes, net, balancing=GMin())
    spec = app_by_short("GA")
    sess = system.session(spec.short, nodes[0])
    proc = env.process(run_request(env, sess, spec))
    env.run(until=proc)

    def finish_again(env):
        yield sess.finish()

    env.process(finish_again(env))
    env.run()  # no exception: teardown is idempotent

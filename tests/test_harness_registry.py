"""The declarative experiment registry (repro.harness.registry).

Covers discovery/listing/lookup, the ParamGrid algebra, JSON
round-tripping, the GridExperiment protocol (a two-axis sweep as one
registered class, no CLI plumbing), and the cached-analysis contract:
``analyze_from`` re-renders a saved run byte-identically without
touching the DES kernel.
"""

import json

import pytest

import repro.obs as obs
from repro.harness import registry
from repro.harness.runner import SCALE_QUICK
from repro.sim.core import Environment


EXPECTED_NAMES = {
    "table1", "fig1", "fig2", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "ablations", "chaos", "pairsweep",
    "scale", "scaleout",
}


# -- discovery & lookup ------------------------------------------------------


def test_discovery_registers_every_harness_entry_point():
    assert set(registry.names()) >= EXPECTED_NAMES
    for name in EXPECTED_NAMES:
        cls = registry.get(name)
        assert issubclass(cls, registry.Experiment)
        assert cls.name == name
        assert "run" in cls.phases()


def test_listing_shows_name_phases_grid_and_description():
    text = registry.format_listing()
    for name in EXPECTED_NAMES:
        assert name in text
    # pairsweep implements all three phases and declares a 2-axis grid.
    pairsweep_line = next(
        line for line in text.splitlines() if line.startswith("pairsweep")
    )
    assert "prepare/run/analyze" in pairsweep_line
    assert "policy[" in pairsweep_line and "pair[" in pairsweep_line
    # Descriptions come from the class docstrings.
    assert registry.get("fig9").describe() in text


def test_unknown_name_raises_with_near_miss_suggestions():
    with pytest.raises(registry.UnknownExperiment) as exc:
        registry.get("fig99")
    msg = str(exc.value)
    assert "fig99" in msg and "did you mean" in msg and "fig9" in msg
    assert "python -m repro.harness list" in msg
    assert "fig9" in exc.value.suggestions


def test_unknown_name_without_suggestions_still_actionable():
    with pytest.raises(registry.UnknownExperiment) as exc:
        registry.get("zzzzzzzz")
    assert "python -m repro.harness list" in str(exc.value)


def test_alias_resolves_to_canonical_experiment():
    assert registry.get("ablate") is registry.get("ablations")


# -- ParamGrid ---------------------------------------------------------------


def test_param_grid_points_product_order():
    grid = registry.ParamGrid.of(a=(1, 2), b=("x", "y", "z"))
    assert grid.axis_names == ["a", "b"]
    assert len(grid) == 6
    pts = list(grid.points())
    assert pts[0] == {"a": 1, "b": "x"}
    assert pts[1] == {"a": 1, "b": "y"}  # last axis fastest
    assert pts[-1] == {"a": 2, "b": "z"}
    assert grid.describe() == "a[2]xb[3]"


def test_param_grid_single_axis():
    grid = registry.ParamGrid.of(load=(0.5, 1.0, 2.0))
    assert len(grid) == 3
    assert [p["load"] for p in grid.points()] == [0.5, 1.0, 2.0]


# -- JSON round-tripping -----------------------------------------------------


def test_to_jsonable_normalizes_tuples_and_keys():
    doc = {1: ("a", 2.5), "nested": {True: [(0, 1)]}}
    out = registry.to_jsonable(doc)
    assert out == {"1": ["a", 2.5], "nested": {"True": [[0, 1]]}}
    # Round-trip is a fixed point: what analyze sees live is exactly
    # what json.load returns from the cached artifact.
    assert registry.roundtrip(doc) == out
    assert registry.roundtrip(out) == out


def test_to_jsonable_collapses_numpy():
    np = pytest.importorskip("numpy")
    out = registry.to_jsonable({"xs": np.array([1.0, 2.0]), "n": np.int64(3)})
    assert out == {"xs": [1.0, 2.0], "n": 3}
    json.dumps(out)  # genuinely serializable


# -- GridExperiment: a 2-axis sweep as one registered class ------------------


def test_two_axis_grid_sweep_needs_only_one_registered_class():
    """ISSUE acceptance demo: a new >=2-axis sweep is one GridExperiment
    subclass — registration, execution and rendering all come from the
    shared machinery, no new CLI plumbing."""
    calls = []

    @registry.register("_test_grid")
    class TwoAxis(registry.GridExperiment):
        """A two-axis test sweep."""

        grid = registry.ParamGrid.of(alpha=(1, 2, 3), beta=("x", "y"))

        def run_point(self, params, ctx):
            calls.append((params["alpha"], params["beta"]))
            return {"score": params["alpha"] * 10 + len(params["beta"])}

    try:
        exp, results = registry.execute("_test_grid")
        assert calls == [(a, b) for a in (1, 2, 3) for b in ("x", "y")]
        assert results["grid"] == {"alpha": [1, 2, 3], "beta": ["x", "y"]}
        assert len(results["points"]) == len(TwoAxis.grid) == 6
        text = exp.analyze(results, registry.ExperimentContext())
        lines = text.splitlines()
        assert lines[0] == "_test_grid — declared grid sweep"
        assert lines[1].split() == ["alpha", "beta", "score"]
        assert len(lines) == 3 + 6  # title, header, rule, one row per point
    finally:
        registry._REGISTRY.pop("_test_grid", None)


def test_grid_experiment_without_grid_is_an_error():
    class NoGrid(registry.GridExperiment):
        pass

    with pytest.raises(NotImplementedError):
        NoGrid().run(registry.ExperimentContext())


# -- run artifacts -----------------------------------------------------------


def test_load_run_rejects_non_run_directory(tmp_path):
    with pytest.raises(ValueError, match="not a harness run directory"):
        registry.load_run(str(tmp_path))


def test_load_run_rejects_format_mismatch(tmp_path):
    (tmp_path / "experiment.json").write_text(
        json.dumps({"format": 999, "experiment": "fig1"})
    )
    with pytest.raises(ValueError, match="format 999"):
        registry.load_run(str(tmp_path))


def test_load_run_rejects_missing_results(tmp_path):
    (tmp_path / "experiment.json").write_text(
        json.dumps({"format": registry.RUN_FORMAT, "experiment": "fig1"})
    )
    with pytest.raises(ValueError, match="results.json missing"):
        registry.load_run(str(tmp_path))


def _events_processed(tel) -> float:
    """Total of every ``sim.events_processed`` gauge in a registry."""
    return sum(
        inst.value
        for (_, (name, _labels)), inst in tel._instruments.items()
        if name == "sim.events_processed"
    )


def test_cached_analysis_is_byte_identical_and_never_simulates(
    tmp_path, monkeypatch
):
    """ISSUE round-trip contract: ``analyze --from <run-dir>`` re-renders
    the report byte-identically, and the DES kernel never runs — the
    ``sim.events_processed`` gauge stays 0 and Environment is never even
    constructed."""
    tiny = SCALE_QUICK.scaled(requests_per_stream=2)
    run_dir = tmp_path / "run"
    options = {"apps": ["GA"], "policies": ["GRR-Strings"]}

    tel_live = obs.Telemetry()
    tel_live.sampler = obs.Sampler(interval_s=1.0)
    obs.install(tel_live)
    try:
        ctx = registry.ExperimentContext(
            scale=tiny, options=dict(options), out_dir=str(run_dir)
        )
        exp, results = registry.execute("fig9", ctx)
        live_text = exp.analyze(results, ctx)
    finally:
        obs.reset()
    # Control: the gauge really does count simulation when one runs.
    assert _events_processed(tel_live) > 0
    assert (run_dir / "experiment.json").exists()
    assert (run_dir / "results.json").exists()
    meta = json.loads((run_dir / "experiment.json").read_text())
    assert meta["format"] == registry.RUN_FORMAT
    assert meta["experiment"] == "fig9"
    assert meta["scale"]["requests_per_stream"] == 2

    tel_cached = obs.Telemetry()
    tel_cached.sampler = obs.Sampler(interval_s=1.0)
    obs.install(tel_cached)

    def no_sim(*args, **kwargs):
        raise AssertionError("analyze --from must not construct the DES kernel")

    monkeypatch.setattr(Environment, "__init__", no_sim)
    try:
        cached_text = registry.analyze_from(str(run_dir))
    finally:
        obs.reset()

    assert cached_text == live_text
    assert _events_processed(tel_cached) == 0


def test_run_main_prints_and_returns_report(capsys):
    tiny = SCALE_QUICK.scaled(requests_per_stream=2)
    text = registry.run_main(
        "fig9", scale=tiny, apps=["GA"], policies=["GRR-Strings"]
    )
    out = capsys.readouterr().out
    assert text in out
    assert "Fig. 9" in text and "GRR-Strings" in text

"""Unit tests for RandomStream variates and seed derivation."""

import numpy as np
import pytest

from repro.sim.rng import RandomStream, derive_seed


def test_same_seed_same_draws():
    a, b = RandomStream(10), RandomStream(10)
    assert a.uniform() == b.uniform()


def test_different_keys_different_draws():
    a = RandomStream(10, "x")
    b = RandomStream(10, "y")
    assert a.uniform() != b.uniform()


def test_spawn_is_deterministic():
    a = RandomStream(10).spawn("child")
    b = RandomStream(10).spawn("child")
    assert a.exponential(1.0) == b.exponential(1.0)


def test_derive_seed_is_64bit():
    s = derive_seed(1, "k")
    assert 0 <= s < 2**64


def test_exponential_validation():
    rng = RandomStream(1)
    with pytest.raises(ValueError):
        rng.exponential(-1.0)
    assert rng.exponential(0.0) == 0.0


def test_exponential_array_matches_scalar_distribution():
    rng = RandomStream(5)
    xs = rng.exponential_array(2.0, 2000)
    assert xs.shape == (2000,)
    assert np.mean(xs) == pytest.approx(2.0, rel=0.2)
    with pytest.raises(ValueError):
        rng.exponential_array(-1.0, 10)
    assert np.all(rng.exponential_array(0.0, 4) == 0.0)


def test_integers_in_range():
    rng = RandomStream(3)
    draws = {rng.integers(2, 5) for _ in range(200)}
    assert draws == {2, 3, 4}


def test_choice_returns_member():
    rng = RandomStream(3)
    seq = ["a", "b", "c"]
    for _ in range(20):
        assert rng.choice(seq) in seq


def test_shuffle_permutes_in_place():
    rng = RandomStream(3)
    xs = list(range(50))
    ys = list(xs)
    rng.shuffle(ys)
    assert sorted(ys) == xs
    assert ys != xs  # overwhelmingly likely


def test_normal_statistics():
    rng = RandomStream(4)
    xs = [rng.normal(5.0, 2.0) for _ in range(3000)]
    assert np.mean(xs) == pytest.approx(5.0, abs=0.2)
    assert np.std(xs) == pytest.approx(2.0, abs=0.2)


def test_lognormal_jitter_centred_on_one():
    rng = RandomStream(4)
    xs = [rng.lognormal_jitter(0.05) for _ in range(2000)]
    assert np.median(xs) == pytest.approx(1.0, abs=0.02)
    assert all(x > 0 for x in xs)
    assert rng.lognormal_jitter(0.0) == 1.0


def test_arrival_times_empty_when_horizon_zero():
    rng = RandomStream(6)
    assert list(rng.arrival_times(1.0, horizon=0.0)) == []

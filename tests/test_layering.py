"""The import-layering lint (tools/check_layering.py).

The repro tree itself must be clean, and the checker must actually catch
back-edges — a lint that never fires is worse than none.
"""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_layering", REPO / "tools" / "check_layering.py"
)
check_layering = importlib.util.module_from_spec(spec)
sys.modules["check_layering"] = check_layering
spec.loader.exec_module(check_layering)


def test_repro_tree_is_clean():
    assert check_layering.check() == []


def test_every_package_is_ranked():
    packages = {
        p.name
        for p in check_layering.REPRO_ROOT.iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    }
    assert packages == set(check_layering.RANK)


def test_back_edge_is_caught(tmp_path):
    root = tmp_path / "repro"
    for pkg in ("sim", "core"):
        (root / pkg).mkdir(parents=True)
        (root / pkg / "__init__.py").write_text("")
    (root / "sim" / "bad.py").write_text("from repro.core import GPool\n")
    violations = check_layering.check(root)
    assert len(violations) == 1
    assert "back-edge" in violations[0]
    assert "sim" in violations[0] and "core" in violations[0]


def test_equal_rank_siblings_rejected(tmp_path):
    root = tmp_path / "repro"
    for pkg in ("workloads", "metrics"):
        (root / pkg).mkdir(parents=True)
        (root / pkg / "__init__.py").write_text("")
    (root / "metrics" / "bad.py").write_text("import repro.workloads.streams\n")
    violations = check_layering.check(root)
    assert len(violations) == 1
    assert "back-edge" in violations[0]


def test_downward_import_allowed(tmp_path):
    root = tmp_path / "repro"
    for pkg in ("sim", "core"):
        (root / pkg).mkdir(parents=True)
        (root / pkg / "__init__.py").write_text("")
    (root / "core" / "ok.py").write_text(
        "from repro.sim import Environment\nimport repro.sim.rng\n"
    )
    assert check_layering.check(root) == []


def test_from_repro_import_subpackage_is_ranked(tmp_path):
    root = tmp_path / "repro"
    (root / "sim").mkdir(parents=True)
    (root / "sim" / "__init__.py").write_text("")
    (root / "sim" / "bad.py").write_text("from repro import harness\n")
    violations = check_layering.check(root)
    assert len(violations) == 1
    assert "harness" in violations[0]


# -- intra-harness ranks (ISSUE 10) ------------------------------------------


def test_every_harness_module_is_ranked():
    modules = {
        p.stem
        for p in (check_layering.REPRO_ROOT / "harness").glob("*.py")
    }
    assert modules == set(check_layering.HARNESS_RANK)


def test_harness_back_edge_is_caught(tmp_path):
    root = tmp_path / "repro"
    (root / "harness").mkdir(parents=True)
    (root / "harness" / "__init__.py").write_text("")
    (root / "harness" / "format.py").write_text(
        "from repro.harness import registry\n"
    )
    violations = check_layering.check(root)
    assert len(violations) == 1
    assert "harness back-edge" in violations[0]
    assert "format" in violations[0] and "registry" in violations[0]


def test_harness_equal_rank_siblings_rejected(tmp_path):
    root = tmp_path / "repro"
    (root / "harness").mkdir(parents=True)
    (root / "harness" / "__init__.py").write_text("")
    (root / "harness" / "fig1.py").write_text(
        "from repro.harness.fig2 import run\n"
    )
    violations = check_layering.check(root)
    assert len(violations) == 1
    assert "harness back-edge" in violations[0]


def test_harness_downward_import_allowed(tmp_path):
    root = tmp_path / "repro"
    (root / "harness").mkdir(parents=True)
    (root / "harness" / "__init__.py").write_text("")
    (root / "harness" / "fig1.py").write_text(
        "from repro.harness import registry\n"
        "from repro.harness.format import format_table\n"
        "import repro.harness.runner\n"
    )
    assert check_layering.check(root) == []


def test_unranked_harness_module_flagged(tmp_path):
    root = tmp_path / "repro"
    (root / "harness").mkdir(parents=True)
    (root / "harness" / "__init__.py").write_text("")
    (root / "harness" / "mystery.py").write_text("")
    violations = check_layering.check(root)
    assert len(violations) == 1
    assert "unranked harness module" in violations[0]


def test_facade_reexport_counts_as_init_import(tmp_path):
    # ``from repro.harness import run_stream_experiment`` reaches through
    # the package facade: ranked as an import of __init__ (rank 3), legal
    # from experiment modules, illegal from format/runner.
    root = tmp_path / "repro"
    (root / "harness").mkdir(parents=True)
    (root / "harness" / "__init__.py").write_text("")
    (root / "harness" / "runner.py").write_text(
        "from repro.harness import run_stream_experiment\n"
    )
    violations = check_layering.check(root)
    assert len(violations) == 1
    assert "harness back-edge" in violations[0]

"""Unit tests for the compute and copy engine models."""

import pytest

from repro.sim import Environment
from repro.simgpu import (
    TESLA_C2050,
    CopyEngine,
    CopyKind,
    CopyOp,
    KernelOp,
    SharedComputeEngine,
)
from repro.simgpu.trace import BusyTracer


def make_engine(env, spec=TESLA_C2050, tracer=None):
    return SharedComputeEngine(env, spec, tracer=tracer)


def run_kernels(spec, kernels, stagger=0.0):
    """Run kernels concurrently (optionally staggered); return finish times."""
    env = Environment()
    eng = make_engine(env, spec)
    finish = {}

    def submit(env, k, delay, idx):
        if delay:
            yield env.timeout(delay)
        yield eng.execute(k)
        finish[idx] = env.now

    for i, k in enumerate(kernels):
        env.process(submit(env, k, stagger * i, i))
    env.run()
    return finish


def test_single_kernel_takes_solo_time():
    k = KernelOp(flops=103.0, bytes_accessed=0.001)
    finish = run_kernels(TESLA_C2050, [k])
    expected = k.solo_time(TESLA_C2050) + TESLA_C2050.kernel_launch_latency_s
    assert finish[0] == pytest.approx(expected, rel=1e-9)


def test_two_low_occupancy_kernels_fully_overlap():
    # Each fills less than half the SMs and uses little bandwidth: full
    # overlap (penalty-free spec to assert the exact SM-sharing math).
    spec = TESLA_C2050.scaled(concurrency_penalty=0.0)
    k1 = KernelOp(flops=103.0, bytes_accessed=0.01, occupancy=0.4)
    k2 = KernelOp(flops=103.0, bytes_accessed=0.01, occupancy=0.4)
    finish = run_kernels(spec, [k1, k2])
    solo = k1.solo_time(spec) + spec.kernel_launch_latency_s
    assert finish[0] == pytest.approx(solo, rel=1e-6)
    assert finish[1] == pytest.approx(solo, rel=1e-6)


def test_concurrency_penalty_slows_coresident_kernels():
    # With the default character-collision penalty, two co-resident
    # kernels each run at 1/(1 + penalty) of full rate.
    k1 = KernelOp(flops=103.0, bytes_accessed=0.01, occupancy=0.4)
    k2 = KernelOp(flops=103.0, bytes_accessed=0.01, occupancy=0.4)
    finish = run_kernels(TESLA_C2050, [k1, k2])
    solo = k1.solo_time(TESLA_C2050)
    expected = solo * (1.0 + TESLA_C2050.concurrency_penalty)
    assert finish[0] == pytest.approx(expected, rel=1e-3)


def test_two_full_occupancy_kernels_share_sms():
    # Both want all SMs: each runs at half rate, finishing together at 2x.
    spec = TESLA_C2050.scaled(concurrency_penalty=0.0)
    k1 = KernelOp(flops=103.0, bytes_accessed=0.01, occupancy=1.0)
    k2 = KernelOp(flops=103.0, bytes_accessed=0.01, occupancy=1.0)
    finish = run_kernels(spec, [k1, k2])
    solo = k1.solo_time(spec) + spec.kernel_launch_latency_s
    assert finish[0] == pytest.approx(2 * solo, rel=1e-4)
    assert finish[1] == pytest.approx(2 * solo, rel=1e-4)


def test_memory_bound_pair_interferes():
    # Two bandwidth-saturating kernels co-run: memory is the bottleneck,
    # so each is slowed even at low occupancy.
    k1 = KernelOp(flops=0.001, bytes_accessed=14.4, occupancy=0.3)
    k2 = KernelOp(flops=0.001, bytes_accessed=14.4, occupancy=0.3)
    finish = run_kernels(TESLA_C2050, [k1, k2])
    solo = k1.solo_time(TESLA_C2050)
    assert finish[0] > 1.5 * solo  # each roughly halved


def test_compute_plus_memory_bound_pair_coexists():
    # A compute-bound kernel suffers little next to a bandwidth hog — the
    # asymmetry the MBF policy exploits.
    compute = KernelOp(flops=103.0, bytes_accessed=0.01, occupancy=0.5)
    memory = KernelOp(flops=0.001, bytes_accessed=14.4, occupancy=0.5)
    finish = run_kernels(TESLA_C2050, [compute, memory])
    solo_compute = compute.solo_time(TESLA_C2050) + TESLA_C2050.kernel_launch_latency_s
    assert finish[0] <= 1.1 * solo_compute


def test_staggered_arrival_slows_first_kernel_tail():
    k1 = KernelOp(flops=103.0, bytes_accessed=0.01, occupancy=1.0)
    k2 = KernelOp(flops=103.0, bytes_accessed=0.01, occupancy=1.0)
    solo = k1.solo_time(TESLA_C2050)
    finish = run_kernels(TESLA_C2050, [k1, k2], stagger=solo / 2)
    # k1 runs alone for solo/2, then shares: total > solo.
    assert finish[0] > solo
    assert finish[0] < 2 * solo
    # k2 arrives at solo/2, shares until k1 finishes, then runs alone.
    assert finish[1] > finish[0]


def test_engine_completed_counter():
    env = Environment()
    eng = make_engine(env)

    def go(env):
        yield eng.execute(KernelOp(flops=1.0, bytes_accessed=0.01))
        yield eng.execute(KernelOp(flops=1.0, bytes_accessed=0.01))

    env.process(go(env))
    env.run()
    assert eng.completed == 2
    assert eng.active_count == 0


def test_engine_utilization_fraction():
    env = Environment()
    eng = make_engine(env)
    k = KernelOp(flops=103.0, bytes_accessed=0.001)  # 0.1 s

    def go(env):
        yield eng.execute(k)
        yield env.timeout(0.1)  # idle tail

    env.process(go(env))
    env.run()
    assert eng.utilization() == pytest.approx(0.5, rel=1e-2)


def test_engine_completion_record_fields():
    env = Environment()
    eng = make_engine(env)
    k = KernelOp(flops=1.0, bytes_accessed=0.001, tag="probe")
    records = []

    def go(env):
        rec = yield eng.execute(k)
        records.append(rec)

    env.process(go(env))
    env.run()
    (rec,) = records
    assert rec["op"] is k
    assert rec["started_at"] == 0.0
    assert rec["finished_at"] == pytest.approx(rec["solo_time"])


def test_tracer_records_kernel_intervals():
    env = Environment()
    tracer = BusyTracer()
    eng = make_engine(env, tracer=tracer)

    def go(env):
        yield eng.execute(KernelOp(flops=1.0, bytes_accessed=0.001))

    env.process(go(env))
    env.run()
    assert len(tracer.intervals) == 1
    assert tracer.intervals[0].start == 0.0


# -- CopyEngine ----------------------------------------------------------------


def test_copy_engine_fifo_serializes():
    env = Environment()
    eng = CopyEngine(env, TESLA_C2050, "h2d")
    op = lambda: CopyOp(nbytes=58_000_000, kind=CopyKind.H2D, pinned=True)  # 10ms
    finish = []

    def go(env, idx):
        rec = yield eng.execute(op())
        finish.append((idx, env.now, rec["started_at"]))

    env.process(go(env, 0))
    env.process(go(env, 1))
    env.run()
    finish.sort()
    t_one = 0.01 + TESLA_C2050.copy_latency_s
    assert finish[0][1] == pytest.approx(t_one, rel=1e-4)
    assert finish[1][1] == pytest.approx(2 * t_one, rel=1e-4)
    assert finish[1][2] >= finish[0][1]  # second started after first ended


def test_copy_engine_busy_time_accumulates():
    env = Environment()
    eng = CopyEngine(env, TESLA_C2050, "h2d")

    def go(env):
        yield eng.execute(CopyOp(nbytes=58_000_000, kind=CopyKind.H2D, pinned=True))

    env.process(go(env))
    env.run()
    assert eng.busy_time == pytest.approx(0.01 + TESLA_C2050.copy_latency_s, rel=1e-4)
    assert eng.completed == 1
    assert not eng.busy

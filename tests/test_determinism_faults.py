"""Regression: the fault subsystem costs nothing on the null path.

With no fault plan installed, experiment outputs must stay bit-for-bit
deterministic — the same figure run twice with the same seed produces
byte-identical metrics, and merely importing (or resetting) the
``repro.faults`` machinery changes nothing.
"""

import json

import repro.faults as faults
from repro.harness import fig9
from repro.harness.runner import SCALE_QUICK


def _fig9_json():
    result = fig9.run(SCALE_QUICK, apps=["MC"], policies=["GRR-Rain", "GMin-Strings"])
    return json.dumps(result, sort_keys=True)


def test_fig9_byte_identical_across_runs_with_faults_loaded():
    assert faults.current_plan() is None
    first = _fig9_json()
    second = _fig9_json()
    assert first == second

    # Exercising the plan slot (install + reset, no plan left active)
    # must not perturb the run either.
    faults.install_plan(faults.FaultPlan())
    faults.reset_plan()
    assert faults.current_plan() is None
    third = _fig9_json()
    assert first == third

"""Unit tests for the device-level policies (TFS / LAS / PS dispatchers)."""

import pytest

from repro.sim import Environment
from repro.simgpu import TESLA_C2050, GpuDevice, KernelOp
from repro.core.config import SchedulerConfig
from repro.core.gpu_scheduler import GpuScheduler
from repro.core.policies.device import LAS, PS, TFS, AlwaysAwake
from repro.core.rcb import GpuPhase, RcbEntry

CFG = SchedulerConfig()


def tenant_proc(env, sched, device, entry, n_ops, kernel_s=0.01, occupancy=0.4):
    """A synthetic backend thread: n_ops gated kernels on its own stream."""
    ctx = device.create_context(owner=entry.app_name)
    stream = ctx.create_stream()
    flops = kernel_s * TESLA_C2050.peak_gflops
    for _ in range(n_ops):
        yield sched.permission(entry, GpuPhase.KL)
        entry.issue()
        rec = yield device.submit(stream, KernelOp(flops=flops, bytes_accessed=1e-6, occupancy=occupancy))
        entry.complete(rec)
    return env.now


def setup(policy):
    env = Environment()
    device = GpuDevice(env, TESLA_C2050)
    sched = GpuScheduler(env, device, gid=0, policy=policy, config=CFG)
    return env, device, sched


def register(env, sched, name, weight=1.0):
    holder = {}

    def _reg(env):
        holder["entry"] = yield sched.register(name, "t", weight)

    env.process(_reg(env))
    env.run(until=env.now + 0.001)
    return holder["entry"]


def test_always_awake_entries_never_gated():
    env, device, sched = setup(AlwaysAwake())
    e = register(env, sched, "A")
    assert e.awake
    ev = sched.permission(e, GpuPhase.KL)
    assert ev.triggered


def test_gated_policies_start_entries_asleep():
    env, device, sched = setup(TFS())
    e = register(env, sched, "A")
    assert not e.awake


def test_tfs_equal_weights_get_equal_service():
    env, device, sched = setup(TFS())
    a = register(env, sched, "A")
    b = register(env, sched, "B")
    env.process(tenant_proc(env, sched, device, a, n_ops=40))
    env.process(tenant_proc(env, sched, device, b, n_ops=40))
    env.run(until=1.0)
    assert a.service_attained_s > 0.05
    ratio = a.service_attained_s / max(b.service_attained_s, 1e-9)
    assert 0.7 < ratio < 1.4


def test_tfs_weighted_shares():
    env, device, sched = setup(TFS())
    a = register(env, sched, "A", weight=3.0)
    b = register(env, sched, "B", weight=1.0)
    env.process(tenant_proc(env, sched, device, a, n_ops=200, kernel_s=0.005))
    env.process(tenant_proc(env, sched, device, b, n_ops=200, kernel_s=0.005))
    env.run(until=1.0)
    ratio = a.service_attained_s / max(b.service_attained_s, 1e-9)
    assert 1.8 < ratio < 4.5


def test_tfs_at_most_one_awake():
    env, device, sched = setup(TFS())
    a = register(env, sched, "A")
    b = register(env, sched, "B")
    c = register(env, sched, "C")
    env.process(tenant_proc(env, sched, device, a, n_ops=30))
    env.process(tenant_proc(env, sched, device, b, n_ops=30))
    env.process(tenant_proc(env, sched, device, c, n_ops=30))
    violations = []

    def probe(env):
        while env.now < 0.5:
            awake = sum(e.awake for e in (a, b, c))
            if awake > 1:
                violations.append((env.now, awake))
            yield env.timeout(0.001)

    env.process(probe(env))
    env.run(until=0.5)
    assert violations == []


def test_tfs_work_conserving_when_one_idle():
    env, device, sched = setup(TFS())
    a = register(env, sched, "A")
    b = register(env, sched, "B")  # never issues work
    done = env.process(tenant_proc(env, sched, device, a, n_ops=20, kernel_s=0.01))
    finish = env.run(until=done)
    # 20 x 10ms kernels ~ 0.2s of work; a full 50/50 split of epochs would
    # roughly double that. Work conservation keeps it close to solo.
    assert finish < 0.40


def test_las_prefers_least_attained_service():
    env, device, sched = setup(LAS())
    entries = [register(env, sched, n) for n in ("A", "B", "C", "D", "E")]
    # Give A a huge CGS history: with 5 runnable tenants and 3 wake slots,
    # A must be the one left out while the others run.
    entries[0].cgs = 100.0
    for e in entries:
        env.process(tenant_proc(env, sched, device, e, n_ops=10))
    env.run(until=0.3)
    others = [e.service_attained_s for e in entries[1:]]
    assert entries[0].service_attained_s <= min(others)


def test_las_decay_rolls_every_quantum():
    env, device, sched = setup(LAS())
    a = register(env, sched, "A")
    env.process(tenant_proc(env, sched, device, a, n_ops=10))
    env.run(until=0.3)
    # After several quanta with service, CGS must be positive.
    assert a.cgs > 0.0


def test_las_short_jobs_finish_first():
    env, device, sched = setup(LAS())
    long_e = register(env, sched, "LONG")
    short_e = register(env, sched, "SHORT")
    long_p = env.process(tenant_proc(env, sched, device, long_e, n_ops=50, kernel_s=0.02))
    short_p = env.process(tenant_proc(env, sched, device, short_e, n_ops=5, kernel_s=0.002))
    env.run()
    assert short_p.value < long_p.value


# -- PS phase picking (pure logic) ------------------------------------------------


def entry_with(phase, service=0.0, name="X"):
    e = RcbEntry(app_name=name, tenant_id="t", tenant_weight=1.0, registered_at=0.0)
    e.pending = 1
    e.phase = phase
    e.service_attained_s = service
    return e


def test_ps_picks_one_per_phase():
    ps = PS()
    kl = entry_with(GpuPhase.KL, name="kl")
    h2d = entry_with(GpuPhase.H2D, name="h2d")
    d2h = entry_with(GpuPhase.D2H, name="d2h")
    extra = entry_with(GpuPhase.KL, service=9.0, name="kl2")
    picked = ps._pick([kl, h2d, d2h, extra])
    assert kl in picked and h2d in picked and d2h in picked
    assert extra not in picked


def test_ps_prefers_least_served_within_phase():
    ps = PS()
    hot = entry_with(GpuPhase.KL, service=5.0, name="hot")
    cold = entry_with(GpuPhase.KL, service=0.1, name="cold")
    picked = ps._pick([hot, cold])
    assert cold in picked


def test_ps_fills_spare_slots_by_phase_priority():
    ps = PS()
    k1 = entry_with(GpuPhase.KL, service=0.0, name="k1")
    k2 = entry_with(GpuPhase.KL, service=1.0, name="k2")
    k3 = entry_with(GpuPhase.KL, service=2.0, name="k3")
    k4 = entry_with(GpuPhase.KL, service=3.0, name="k4")
    picked = ps._pick([k1, k2, k3, k4])
    assert len(picked) == 3
    assert k4 not in picked  # most-served kernel-phase entry left out


def test_ps_overlaps_phases_on_device():
    env, device, sched = setup(PS())
    a = register(env, sched, "A")
    b = register(env, sched, "B")
    # Both runnable in different phases: both should be awake together.
    sched.permission(a, GpuPhase.KL)
    sched.permission(b, GpuPhase.H2D)
    env.run(until=0.05)
    assert a.awake and b.awake

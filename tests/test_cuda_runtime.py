"""Unit tests for the simulated CUDA runtime API."""

import pytest

from repro.sim import Environment
from repro.simgpu import QUADRO_2000, TESLA_C2050, CopyKind, GpuDevice
from repro.cuda import CudaError, CudaErrorCode, CudaThread, HostProcess


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def devices(env):
    return [GpuDevice(env, QUADRO_2000), GpuDevice(env, TESLA_C2050)]


@pytest.fixture()
def proc(env, devices):
    return HostProcess(env, devices, name="app")


def test_process_requires_devices(env):
    with pytest.raises(CudaError):
        HostProcess(env, [])


def test_default_device_is_zero(proc):
    t = proc.spawn_thread()
    assert t.device_index == 0
    assert t.get_device_count() == 2


def test_set_device_switches(proc):
    t = proc.spawn_thread()
    t.set_device(1)
    assert t.device.spec.name == "Tesla C2050"


def test_set_device_out_of_range(proc):
    t = proc.spawn_thread()
    with pytest.raises(CudaError) as e:
        t.set_device(5)
    assert e.value.code == CudaErrorCode.INVALID_DEVICE


def test_get_device_properties(proc):
    t = proc.spawn_thread()
    assert t.get_device_properties(1).name == "Tesla C2050"
    assert t.get_device_properties().name == "Quadro 2000"


def test_threads_of_one_process_share_context(proc, devices):
    t1, t2 = proc.spawn_thread(), proc.spawn_thread()
    t1.set_device(1)
    t2.set_device(1)
    assert t1.context is t2.context
    assert len(devices[1].contexts) == 1


def test_separate_processes_get_separate_contexts(env, devices):
    p1 = HostProcess(env, devices, name="a")
    p2 = HostProcess(env, devices, name="b")
    t1, t2 = p1.spawn_thread(), p2.spawn_thread()
    t1.set_device(1)
    t2.set_device(1)
    assert t1.context is not t2.context
    assert len(devices[1].contexts) == 2


def test_malloc_free_roundtrip(env, proc, devices):
    t = proc.spawn_thread()
    t.set_device(1)
    ptr = t.malloc(1 << 20)
    assert devices[1].allocated_bytes == 1 << 20
    t.free(ptr)
    assert devices[1].allocated_bytes == 0


def test_malloc_oom_maps_to_cuda_error(env):
    dev = GpuDevice(env, TESLA_C2050.scaled(mem_capacity_mb=1))
    proc = HostProcess(env, [dev])
    t = proc.spawn_thread()
    with pytest.raises(CudaError) as e:
        t.malloc(2 << 20)
    assert e.value.code == CudaErrorCode.MEMORY_ALLOCATION


def test_free_bad_pointer(proc):
    t = proc.spawn_thread()
    with pytest.raises(CudaError) as e:
        t.free(0x123)
    assert e.value.code == CudaErrorCode.INVALID_DEVICE_POINTER


def test_sync_memcpy_blocks_for_wire_time(env, proc):
    t = proc.spawn_thread()
    t.set_device(1)
    finish = []

    def go(env):
        yield t.memcpy(30_000_000, CopyKind.H2D)  # pageable: 3 GB/s -> 10 ms
        finish.append(env.now)

    env.process(go(env))
    env.run()
    assert finish[0] == pytest.approx(0.01, rel=1e-2)
    assert t.transfer_time_attained == pytest.approx(0.01, rel=1e-2)


def test_async_memcpy_pinned_is_faster(env, proc):
    t = proc.spawn_thread()
    t.set_device(1)
    s = t.stream_create()
    finish = []

    def go(env):
        yield t.memcpy_async(30_000_000, CopyKind.H2D, stream=s)
        finish.append(env.now)

    env.process(go(env))
    env.run()
    # Pinned at 5.8 GB/s beats pageable at 3.0 GB/s.
    assert finish[0] < 0.01


def test_kernel_launch_is_asynchronous(env, proc):
    t = proc.spawn_thread()
    t.set_device(1)
    marks = []

    def go(env):
        done = t.launch_kernel(flops=103.0, bytes_accessed=0.001)  # 100 ms
        marks.append(("launched", env.now))
        yield env.timeout(0.001)
        marks.append(("still-running", env.now, done.processed))
        yield done
        marks.append(("done", env.now))

    env.process(go(env))
    env.run()
    assert marks[0] == ("launched", 0.0)
    assert marks[1][2] is False
    assert marks[2][1] == pytest.approx(0.1, rel=1e-2)
    assert t.gpu_time_attained == pytest.approx(0.1, rel=1e-2)


def test_stream_synchronize_waits_for_stream_only(env, proc):
    t = proc.spawn_thread()
    t.set_device(1)
    s1, s2 = t.stream_create(), t.stream_create()
    finish = []

    def go(env):
        t.launch_kernel(flops=103.0, bytes_accessed=0.001, stream=s1, occupancy=0.4)
        t.launch_kernel(flops=515.0, bytes_accessed=0.001, stream=s2, occupancy=0.4)
        yield t.stream_synchronize(s1)
        finish.append(("s1", env.now))
        yield t.stream_synchronize(s2)
        finish.append(("s2", env.now))

    env.process(go(env))
    env.run()
    # Both kernels co-resident while the short one runs: small penalty.
    assert finish[0][1] == pytest.approx(0.106, rel=1e-2)
    assert finish[1][1] == pytest.approx(0.506, rel=2e-2)


def test_stream_synchronize_idle_stream_is_immediate(env, proc):
    t = proc.spawn_thread()
    s = t.stream_create()
    finish = []

    def go(env):
        yield t.stream_synchronize(s)
        finish.append(env.now)

    env.process(go(env))
    env.run()
    assert finish[0] == 0.0


def test_device_synchronize_waits_all_context_streams(env, proc):
    # Two *threads of the same process* on one device: device_synchronize
    # from thread 1 also waits on thread 2's stream — the hazard SST fixes.
    t1, t2 = proc.spawn_thread(), proc.spawn_thread()
    t1.set_device(1)
    t2.set_device(1)
    s2 = t2.stream_create()
    finish = []

    def worker2(env):
        yield t2.launch_kernel(flops=515.0, bytes_accessed=0.001, stream=s2)

    def worker1(env):
        t1.launch_kernel(flops=103.0, bytes_accessed=0.001, occupancy=0.4)
        yield t1.device_synchronize()
        finish.append(env.now)

    env.process(worker2(env))
    env.process(worker1(env))
    env.run()
    # Waited for t2's 500 ms kernel too, not just its own 100 ms one.
    assert finish[0] >= 0.45


def test_thread_exit_releases_resources(env, proc, devices):
    t = proc.spawn_thread()
    t.set_device(1)
    t.malloc(1 << 20)
    s = t.stream_create()
    t.thread_exit()
    assert t.exited
    assert devices[1].allocated_bytes == 0
    assert s.destroyed
    with pytest.raises(CudaError):
        t.malloc(1)


def test_thread_exit_idempotent(proc):
    t = proc.spawn_thread()
    t.thread_exit()
    t.thread_exit()
    assert t.exited


def test_process_teardown_destroys_contexts(env, proc, devices):
    t = proc.spawn_thread()
    t.set_device(1)
    t.malloc(1 << 20)
    proc.teardown()
    assert devices[1].allocated_bytes == 0
    assert not proc.has_context(1)


def test_usage_counters_accumulate_bytes(env, proc):
    t = proc.spawn_thread()
    t.set_device(1)

    def go(env):
        yield t.launch_kernel(flops=1.0, bytes_accessed=0.25)
        yield t.launch_kernel(flops=1.0, bytes_accessed=0.25)

    env.process(go(env))
    env.run()
    assert t.bytes_accessed == pytest.approx(0.5)

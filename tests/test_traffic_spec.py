"""Tests for the ``--traffic`` grammar (repro.traffic.spec).

Satellite 6 (ISSUE 8): every malformed spec is rejected with an
actionable message naming the offending item, mirroring the ``--faults``
error style, and every well-formed spec round-trips through
``TrafficSpec.canonical()``.
"""

import pytest

from repro.traffic import (
    DiurnalProcess,
    OnOffProcess,
    PoissonProcess,
    TrafficSpec,
    parse_traffic_spec,
)

# -- parsing ------------------------------------------------------------------


def test_minimal_poisson_spec():
    spec = parse_traffic_spec("poisson:rate=50")
    assert isinstance(spec.process, PoissonProcess)
    assert spec.process.rate_rps == 50.0
    assert spec.tenants == 100
    assert not spec.churn.enabled
    assert spec.duration_s == 300.0
    assert spec.expected_requests == 15_000


def test_full_spec_parses_every_knob():
    spec = parse_traffic_spec(
        "onoff:rate=30:burst=3:on=5:off=15,tenants=2000,churn=exp:120,"
        "think=0.5,reqs=6,duration=900,apps=MC+GA*2,nodes=4,seed=7"
    )
    p = spec.process
    assert isinstance(p, OnOffProcess)
    assert (p.rate_rps, p.burst, p.on_s, p.off_s) == (30.0, 3.0, 5.0, 15.0)
    assert spec.tenants == 2000
    assert spec.churn.law == "exp" and spec.churn.mean_s == 120.0
    assert spec.think_s == 0.5
    assert spec.requests_per_session == 6.0
    assert spec.duration_s == 900.0
    assert spec.apps == (("MC", 1.0), ("GA", 2.0))
    assert spec.nodes == 4
    assert spec.seed == 7


def test_diurnal_and_fixed_churn():
    spec = parse_traffic_spec("diurnal:rate=40:period=120:depth=0.5,churn=fixed:60")
    p = spec.process
    assert isinstance(p, DiurnalProcess)
    assert (p.period_s, p.depth) == (120.0, 0.5)
    assert spec.churn.law == "fixed" and spec.churn.mean_s == 60.0


def test_churn_none_is_default():
    assert parse_traffic_spec("poisson:rate=1,churn=none").churn.enabled is False


@pytest.mark.parametrize(
    "text",
    [
        "poisson:rate=50",
        "poisson:rate=12.5,tenants=3,think=0,reqs=1,duration=10,nodes=1",
        "onoff:rate=30:burst=3:on=5:off=15,churn=exp:120,seed=9",
        "diurnal:rate=40:period=120:depth=0.5,apps=MC+GA*2+SN",
        "poisson:rate=2,churn=fixed:30,apps=BS",
    ],
)
def test_canonical_round_trips(text):
    spec = parse_traffic_spec(text)
    assert parse_traffic_spec(spec.canonical()) == spec


def test_scaled_multiplies_only_the_rate():
    spec = parse_traffic_spec("poisson:rate=10,tenants=5,duration=100")
    double = spec.scaled(2.0)
    assert double.process.rate_rps == 20.0
    assert double.offered_rate_rps == 20.0
    assert double.expected_requests == 2000
    assert (double.tenants, double.duration_s) == (5, 100.0)


# -- rejections (one per grammar rule, satellite 6) ---------------------------


def reject(text):
    with pytest.raises(ValueError) as exc:
        parse_traffic_spec(text)
    return str(exc.value)


def test_rejects_empty_spec():
    assert "empty traffic spec" in reject("  ,  ")


def test_rejects_unknown_process():
    msg = reject("weibull:rate=50,tenants=10")
    assert "unknown arrival process 'weibull'" in msg
    assert "poisson, onoff, diurnal" in msg  # names the valid heads


def test_rejects_missing_rate():
    msg = reject("poisson,tenants=10")
    assert "needs rate=" in msg


def test_rejects_non_positive_rate():
    msg = reject("poisson:rate=0")
    assert "rate=" in msg and "must be > 0" in msg
    assert "must be > 0" in reject("poisson:rate=-3")


def test_rejects_non_numeric_rate():
    msg = reject("poisson:rate=fast")
    assert "rate=" in msg and "'fast'" in msg


def test_rejects_malformed_churn_clauses():
    msg = reject("poisson:rate=1,churn=exp")
    assert "malformed churn clause" in msg and "churn=exp:MEAN_S" in msg
    msg = reject("poisson:rate=1,churn=weibull:9")
    assert "unknown law 'weibull'" in msg
    msg = reject("poisson:rate=1,churn=exp:soon")
    assert "lifetime must be a number" in msg
    msg = reject("poisson:rate=1,churn=exp:0")
    assert "must be > 0" in msg
    msg = reject("poisson:rate=1,churn=none:5")
    assert "churn=none takes no lifetime" in msg


def test_rejects_unknown_item():
    msg = reject("poisson:rate=1,sessions=10")
    assert "unknown traffic spec item 'sessions=10'" in msg
    assert "tenants=" in msg  # lists what it does know


def test_rejects_non_kv_item():
    msg = reject("poisson:rate=1,fast")
    assert "KEY=VALUE" in msg


def test_rejects_colon_clause_outside_churn():
    msg = reject("poisson:rate=1,tenants=5:9")
    assert "only churn= takes a ':' clause" in msg


def test_rejects_bad_apps_mix():
    msg = reject("poisson:rate=1,apps=MC+XX")
    assert "unknown app 'XX'" in msg
    msg = reject("poisson:rate=1,apps=MC*heavy")
    assert "weight" in msg and "'heavy'" in msg
    msg = reject("poisson:rate=1,apps=MC++GA")
    assert "empty entry" in msg


def test_rejects_out_of_range_globals():
    assert "tenants=" in reject("poisson:rate=1,tenants=0")
    assert "think=" in reject("poisson:rate=1,think=-1")
    assert "reqs=" in reject("poisson:rate=1,reqs=0.5")
    assert "duration=" in reject("poisson:rate=1,duration=0")
    assert "nodes=" in reject("poisson:rate=1,nodes=0")


def test_rejects_bad_process_fields():
    msg = reject("onoff:rate=10:burst=1")
    assert "burst" in msg and "'onoff:rate=10:burst=1'" in msg
    msg = reject("diurnal:rate=10:depth=2")
    assert "depth" in msg


def test_spec_dataclass_validates_directly():
    with pytest.raises(ValueError, match="unknown app"):
        TrafficSpec(process=PoissonProcess(1.0), apps=(("XX", 1.0),))
    with pytest.raises(ValueError, match="weight"):
        TrafficSpec(process=PoissonProcess(1.0), apps=(("MC", 0.0),))

"""Unit tests for gPool / gMap / DST."""

import pytest

from repro.sim import Environment
from repro.cluster import build_paper_supernode, build_small_server
from repro.core.gpool import DeviceStatus, DeviceStatusTable, GMap, GMapEntry, GPool


def make_pool(small=False):
    env = Environment()
    nodes, _ = build_small_server(env) if small else build_paper_supernode(env)
    return GPool(nodes)


def test_gmap_assigns_sequential_gids():
    pool = make_pool()
    assert pool.gids() == [0, 1, 2, 3]


def test_gmap_locations_follow_node_order():
    pool = make_pool()
    e0 = pool.gmap.lookup(0)
    e3 = pool.gmap.lookup(3)
    assert (e0.hostname, e0.local_id) == ("nodeA", 0)
    assert (e3.hostname, e3.local_id) == ("nodeB", 1)


def test_gmap_unknown_gid():
    pool = make_pool()
    with pytest.raises(KeyError):
        pool.gmap.lookup(99)


def test_gmap_duplicate_gids_rejected():
    entries = [GMapEntry(1, "a", 0), GMapEntry(1, "b", 0)]
    with pytest.raises(ValueError):
        GMap(entries)


def test_gmap_iteration_ordered():
    pool = make_pool()
    gids = [e.gid for e in pool.gmap]
    assert gids == [0, 1, 2, 3]


def test_empty_pool_rejected():
    with pytest.raises(ValueError):
        GPool([])


def test_pool_devices_match_specs():
    pool = make_pool()
    assert pool.device(1).spec.name == "Tesla C2050"
    assert pool.device(2).spec.name == "Quadro 4000"


def test_is_local():
    pool = make_pool()
    assert pool.is_local(0, "nodeA")
    assert not pool.is_local(2, "nodeA")


def test_weights_relative_to_best_card():
    pool = make_pool()
    weights = {r.gid: r.weight for r in pool.dst.rows()}
    # Teslas (gids 1, 3) are the reference class: weight 1.0.
    assert weights[1] == pytest.approx(1.0)
    assert weights[3] == pytest.approx(1.0)
    assert weights[0] < weights[2] < 1.0


def test_dst_bind_unbind_symmetry():
    pool = make_pool()
    dst = pool.dst
    dst.bind(1, estimated_runtime_s=5.0, estimated_utilization=0.7, profile=(0.2, 30.0))
    row = dst.row(1)
    assert row.device_load == 1
    assert row.estimated_load_s == pytest.approx(5.0)
    assert row.utilization_load == pytest.approx(0.7)
    assert row.bound_profiles == [(0.2, 30.0)]
    dst.unbind(1, estimated_runtime_s=5.0, estimated_utilization=0.7, profile=(0.2, 30.0))
    row = dst.row(1)
    assert row.device_load == 0
    assert row.estimated_load_s == pytest.approx(0.0)
    assert row.bound_profiles == []


def test_dst_unbind_never_negative():
    pool = make_pool()
    dst = pool.dst
    dst.unbind(0, estimated_runtime_s=3.0)
    assert dst.row(0).device_load == 0
    assert dst.row(0).estimated_load_s == 0.0


def test_dst_duplicate_gid_rejected():
    dst = DeviceStatusTable()
    from repro.simgpu import TESLA_C2050

    row = DeviceStatus(gid=0, hostname="x", local_id=0, spec=TESLA_C2050, weight=1.0)
    dst.add(row)
    with pytest.raises(ValueError):
        dst.add(DeviceStatus(gid=0, hostname="x", local_id=1, spec=TESLA_C2050, weight=1.0))


def test_small_server_pool_has_two_gids():
    pool = make_pool(small=True)
    assert len(pool) == 2

"""Harness observability outputs end-to-end (ISSUE 2).

One quick fig9 run with every output flag produces the HTML report,
series CSV and Prometheus exposition; the artifacts are then examined
per-test.  A second run checks the --metrics-out-alone summary path.
"""

import csv
import json

import pytest

from repro.harness.__main__ import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs-report")
    paths = {
        "report": out / "report.html",
        "series": out / "series.csv",
        "prom": out / "metrics.prom",
        "metrics": out / "metrics.json",
    }
    rc = main([
        "fig9", "--scale", "quick",
        "--report", str(paths["report"]),
        "--series-out", str(paths["series"]),
        "--prom-out", str(paths["prom"]),
        "--metrics-out", str(paths["metrics"]),
        "--slo", "*:60:0.99,window=20",
        "--sample-interval", "2.0",
    ])
    assert rc == 0
    return paths


class TestHtmlReport:
    def test_report_is_self_contained_and_non_empty(self, artifacts):
        html = artifacts["report"].read_text()
        assert len(html) > 10_000
        assert html.count("<svg") >= 2  # sparklines are inline, not linked
        assert "<script src" not in html and "<link" not in html

    def test_report_has_the_required_sections(self, artifacts):
        html = artifacts["report"].read_text()
        assert "GPU utilization" in html
        assert "Tenant attribution" in html
        assert "SLO compliance" in html
        assert "Placements" in html  # per-run decision-log excerpt

    def test_report_covers_the_fig9_runs(self, artifacts):
        html = artifacts["report"].read_text()
        for run in ("CUDA", "GMin-Strings", "GWtMin-Rain"):
            assert run in html

    def test_report_ships_a_dark_theme(self, artifacts):
        html = artifacts["report"].read_text()
        assert "prefers-color-scheme: dark" in html
        assert 'data-theme="dark"' in html


class TestSeriesCsv:
    def test_round_trips_as_long_format_csv(self, artifacts):
        with open(artifacts["series"]) as fh:
            reader = csv.reader(fh)
            header = next(reader)
            rows = list(reader)
        assert header == ["name", "labels", "t", "value"]
        assert rows
        names = {r[0] for r in rows}
        assert "gpu.util" in names
        for r in rows[:200]:
            float(r[2]), float(r[3])  # parse cleanly

    def test_util_series_stays_in_unit_range(self, artifacts):
        with open(artifacts["series"]) as fh:
            reader = csv.reader(fh)
            next(reader)
            for name, _, _, value in reader:
                if name == "gpu.util":
                    assert 0.0 <= float(value) <= 1.0


class TestPrometheusExposition:
    def test_round_trip_parse(self, artifacts):
        """Every sample line must scan as NAME{labels} VALUE and agree
        with its preceding # TYPE declaration."""
        types = {}
        samples = 0
        for line in artifacts["prom"].read_text().splitlines():
            if not line:
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                assert kind in ("counter", "gauge", "histogram")
                types[name] = kind
                continue
            assert not line.startswith("#")
            metric, _, value = line.rpartition(" ")
            float(value)
            name = metric.split("{")[0]
            # Counters are declared with their _total name; histogram
            # samples hang _bucket/_sum/_count off the declared base.
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
                    break
            assert name in types or base in types, f"sample {metric!r} has no # TYPE"
            samples += 1
        assert samples > 10
        assert any(k == "counter" for k in types.values())
        assert any(k == "histogram" for k in types.values())

    def test_names_are_prefixed_and_sanitized(self, artifacts):
        for name in (m for m in _prom_metric_names(artifacts["prom"])):
            assert name.startswith("repro_")
            assert "." not in name and "-" not in name


def _prom_metric_names(path):
    for line in path.read_text().splitlines():
        if line.startswith("# TYPE "):
            yield line.split(" ")[2]


class TestMetricsJson:
    def test_metrics_json_carries_the_new_sections(self, artifacts):
        data = json.loads(artifacts["metrics"].read_text())
        assert data["series"]
        assert data["attribution"]
        assert data["slo"]
        row = data["attribution"][0]
        for key in ("tenant", "gid", "gpu_busy_s", "interference_index"):
            assert key in row


class TestMetricsOutAlone:
    def test_summary_has_percentiles_without_trace_flag(self, tmp_path, capsys):
        """Satellite: --metrics-out alone still yields span-derived p50/p99."""
        path = tmp_path / "metrics.json"
        assert main(["fig9", "--scale", "quick", "--metrics-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "request completion:" in out
        assert "p50" in out and "p99" in out
        data = json.loads(path.read_text())
        assert data["spans"]  # spans were collected without --trace


class TestCliValidation:
    def test_rejects_non_positive_sample_interval(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--report", "/tmp/r.html", "--sample-interval", "0"])
        assert "--sample-interval" in capsys.readouterr().err

    def test_rejects_malformed_slo_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--slo", "MC"])
        assert "bad SLO item" in capsys.readouterr().err

    def test_rejects_bad_slo_window(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--slo", "MC:1.0,window=0"])
        assert "window" in capsys.readouterr().err

    def test_rejects_unwritable_output_path(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig1", "--report", "/nonexistent-dir/r.html"])
        assert "cannot write" in capsys.readouterr().err

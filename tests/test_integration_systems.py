"""Integration tests: full request flows through the three runtime systems."""

import pytest

from repro.sim import Environment
from repro.cluster import build_paper_supernode, build_single_gpu_server, build_small_server
from repro.core import CudaRuntimeSystem, RainSystem, StringsSystem
from repro.core.policies import GMin, GRR, GWtMin, LAS, PS, TFS
from repro.core.policies.feedback import MBF
from repro.apps import app_by_short, run_request


def run_n(make_system, app_shorts, testbed=build_small_server, until=None):
    env = Environment()
    nodes, net = testbed(env)
    system = make_system(env, nodes, net)
    sessions, procs = [], []
    for i, short in enumerate(app_shorts):
        spec = app_by_short(short)
        sess = system.session(spec.short, nodes[0], tenant_id=f"t{i}")
        sessions.append(sess)
        procs.append(env.process(run_request(env, sess, spec)))
    env.run(until=env.all_of(procs))
    return env, nodes, system, sessions, [p.value for p in procs]


def test_cuda_baseline_all_requests_collide_on_device0():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: CudaRuntimeSystem(e, n, w), ["BS", "BS", "BS"]
    )
    dev0, dev1 = nodes[0].devices
    assert dev0.kernels_completed == 3 * app_by_short("BS").iterations
    assert dev1.kernels_completed == 0  # static collision: device 1 idle
    assert dev0.ctx_switches > 0  # separate contexts multiplexed


def test_rain_balances_but_separate_contexts():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: RainSystem(e, n, w, balancing=GRR()), ["BS", "BS"]
    )
    dev0, dev1 = nodes[0].devices
    assert dev0.kernels_completed > 0
    assert dev1.kernels_completed > 0  # balanced across both GPUs
    # Design I: one context per app on whichever device it used.
    assert len(dev0.contexts) == 1 and len(dev1.contexts) == 1


def test_strings_packs_one_context_per_device():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: StringsSystem(e, n, w, balancing=GMin()),
        ["BS", "BS", "BS", "BS"],
    )
    for dev in nodes[0].devices:
        assert len(dev.contexts) <= 1  # packed: one context per device
        assert dev.ctx_switches == 0


def test_strings_mot_uses_pinned_staging():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: StringsSystem(e, n, w, balancing=GRR()), ["MC"]
    )
    gid = sessions[0].binding.gid
    packer = system.packers[gid]
    spec = app_by_short("MC")
    # Every iteration staged one H2D and one D2H buffer through the PMT.
    assert packer.pmt.total_staged >= spec.iterations * spec.h2d_bytes
    assert len(packer.pmt) == 0  # all reclaimed at exit


def test_strings_feedback_reaches_sft():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: StringsSystem(e, n, w, balancing=GMin()), ["BS", "MC"]
    )
    assert system.sft.known("BS")
    assert system.sft.known("MC")
    row = system.sft.lookup("MC")
    assert row.transfer_fraction > 0.5  # MC is transfer-dominated
    assert 0 < row.runtime_s < 60


def test_rain_feedback_reaches_sft_too():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: RainSystem(e, n, w, balancing=GMin()), ["BS"]
    )
    assert system.sft.known("BS")


def test_dst_load_returns_to_zero_after_completion():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: StringsSystem(e, n, w, balancing=GMin()), ["BS", "GA"]
    )
    for row in system.pool.dst.rows():
        assert row.device_load == 0
        assert row.bound_profiles == []


def test_completion_results_well_formed():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: StringsSystem(e, n, w, balancing=GRR()), ["GA", "SN"]
    )
    for r in results:
        assert r.finish_s > r.start_s >= 0
        assert r.completion_s > 0


def test_strings_faster_than_rain_faster_than_cuda_under_sharing():
    """The paper's headline ordering on a contended node."""
    apps = ["MC", "DC", "MC", "DC"]

    def makespan(make):
        env, nodes, system, sessions, results = run_n(make, apps)
        return max(r.finish_s for r in results)

    t_cuda = makespan(lambda e, n, w: CudaRuntimeSystem(e, n, w))
    t_rain = makespan(lambda e, n, w: RainSystem(e, n, w, balancing=GMin()))
    t_strings = makespan(lambda e, n, w: StringsSystem(e, n, w, balancing=GMin()))
    assert t_strings < t_rain < t_cuda


def test_supernode_uses_remote_gpus():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: StringsSystem(e, n, w, balancing=GRR()),
        ["BS", "BS", "BS", "BS"],
        testbed=build_paper_supernode,
    )
    used = [gid for gid in system.pool.gids() if system.pool.device(gid).kernels_completed]
    assert len(used) == 4  # GRR spread across all four GPUs, incl. remote


def test_device_policies_run_under_full_stack():
    for policy in (TFS, LAS, PS):
        env, nodes, system, sessions, results = run_n(
            lambda e, n, w, p=policy: StringsSystem(
                e, n, w, balancing=GMin(), device_policy=p
            ),
            ["BS", "GA"],
            testbed=build_single_gpu_server,
        )
        assert len(results) == 2
        for r in results:
            assert r.completion_s > 0


def test_tfs_rain_runs_under_full_stack():
    env, nodes, system, sessions, results = run_n(
        lambda e, n, w: RainSystem(e, n, w, balancing=GMin(), device_policy=TFS),
        ["BS", "GA"],
        testbed=build_single_gpu_server,
    )
    assert len(results) == 2


def test_mbf_system_with_prewarmed_sft_balances():
    from repro.harness.runner import prewarm_sft

    def make(env, nodes, net):
        system = StringsSystem(env, nodes, net, balancing=GMin())
        system.mapper.policy = MBF(system.sft, fallback=GMin())
        prewarm_sft(system)
        return system

    env, nodes, system, sessions, results = run_n(make, ["HI", "HI"])
    # Two bandwidth-bound HI instances must land on different GPUs.
    gids = {s.binding.gid for s in sessions}
    assert len(gids) == 2
    assert system.mapper.policy.feedback_decisions == 2


def test_session_label_helper():
    env = Environment()
    nodes, net = build_small_server(env)
    system = StringsSystem(env, nodes, net, balancing=GWtMin(), device_policy=LAS)
    assert system.label() == "GWtMin+LAS-Strings"
    system2 = RainSystem(env, nodes, net, balancing=GRR())
    assert system2.label() == "GRR-Rain"

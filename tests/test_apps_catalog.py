"""Tests for the Table I application catalog and calibration."""

import pytest

from repro.apps import ALL_APPS, GROUP_A, GROUP_B, app_by_short
from repro.apps.catalog import PAPER_BANDWIDTH_MBPS, REFERENCE_SPEC, calibrate
from repro.simgpu.specs import QUADRO_2000


def test_ten_apps_in_two_groups():
    assert len(ALL_APPS) == 10
    assert [a.short for a in GROUP_A] == ["DC", "SC", "BO", "MM", "HI", "EV"]
    assert [a.short for a in GROUP_B] == ["BS", "MC", "GA", "SN"]


def test_app_lookup():
    assert app_by_short("MC").name == "MonteCarlo"
    with pytest.raises(KeyError):
        app_by_short("ZZ")


def test_group_a_runtimes_in_paper_band():
    for app in GROUP_A:
        rt = app.solo_runtime_s(REFERENCE_SPEC)
        assert 10.0 <= rt <= 55.0, app.short


def test_group_b_runtimes_under_ten_seconds():
    for app in GROUP_B:
        rt = app.solo_runtime_s(REFERENCE_SPEC)
        assert rt < 10.0, app.short


@pytest.mark.parametrize(
    "short,gpu_frac",
    [("DC", 0.8931), ("SC", 0.1073), ("BO", 0.4106), ("MM", 0.8013),
     ("HI", 0.8651), ("EV", 0.4192), ("BS", 0.2451), ("MC", 0.8486),
     ("GA", 0.0114), ("SN", 0.0205)],
)
def test_gpu_fraction_matches_table1(short, gpu_frac):
    app = app_by_short(short)
    assert app.gpu_fraction(REFERENCE_SPEC) == pytest.approx(gpu_frac, rel=0.02)


@pytest.mark.parametrize(
    "short,tf",
    [("BO", 0.9888), ("MC", 0.9894), ("SC", 0.2499), ("SN", 0.2668), ("DC", 0.00005)],
)
def test_transfer_fraction_matches_table1(short, tf):
    app = app_by_short(short)
    assert app.transfer_fraction(REFERENCE_SPEC) == pytest.approx(tf, rel=0.05, abs=1e-4)


def test_bandwidth_ranking_matches_paper():
    """The per-app memory-bandwidth *ordering* of Table I is preserved."""
    ours = {a.short: a.memory_bandwidth_gbps(REFERENCE_SPEC) for a in ALL_APPS}
    paper_order = sorted(PAPER_BANDWIDTH_MBPS, key=PAPER_BANDWIDTH_MBPS.get)
    ours_order = sorted(ours, key=ours.get)
    assert ours_order == paper_order


def test_histogram_is_memory_bound_in_model():
    hi = app_by_short("HI")
    assert hi.memory_boundedness(REFERENCE_SPEC) > 0.8


def test_dxtc_is_compute_bound_in_model():
    dc = app_by_short("DC")
    assert dc.memory_boundedness(REFERENCE_SPEC) < 0.1


def test_kernels_slower_on_quadro():
    for app in ALL_APPS:
        assert app.kernel_solo_s(QUADRO_2000) >= app.kernel_solo_s(REFERENCE_SPEC)


def test_buffer_bytes_bounded():
    for app in ALL_APPS:
        assert 32e6 <= app.buffer_bytes <= 192e6


def test_calibrate_validation():
    with pytest.raises(ValueError):
        calibrate("X", "X", "A", 10, gpu_frac=1.5, transfer_frac=0, boundedness=0,
                  occupancy=0.5, iterations=4)
    with pytest.raises(ValueError):
        calibrate("X", "X", "C", 10, gpu_frac=0.5, transfer_frac=0, boundedness=0,
                  occupancy=0.5, iterations=4)


def test_calibrate_roundtrip_custom():
    app = calibrate("Custom", "CU", "B", runtime_s=4.0, gpu_frac=0.5,
                    transfer_frac=0.3, boundedness=0.4, occupancy=0.5, iterations=8)
    assert app.solo_runtime_s(REFERENCE_SPEC) == pytest.approx(4.0, rel=0.02)
    assert app.gpu_fraction(REFERENCE_SPEC) == pytest.approx(0.5, rel=0.02)
    assert app.transfer_fraction(REFERENCE_SPEC) == pytest.approx(0.3, rel=0.05)
    assert app.memory_boundedness(REFERENCE_SPEC) == pytest.approx(0.4, rel=0.02)

"""Tests for the Policy Arbiter's dynamic policy switching."""

import pytest

from repro.sim import Environment
from repro.cluster import build_small_server
from repro.core import StringsSystem
from repro.core.arbiter import PolicyArbiter, install_arbiter
from repro.core.feedback import AppProfile
from repro.core.policies import GMin, MBF
from repro.apps import app_by_short, run_request


def make_system():
    env = Environment()
    nodes, net = build_small_server(env)
    system = StringsSystem(env, nodes, net, balancing=GMin())
    return env, nodes, system


def profile(name, runtime=5.0):
    return AppProfile(
        app_name=name, runtime_s=runtime, gpu_time_s=2.0,
        transfer_time_s=0.5, bytes_accessed_gb=10.0,
    )


def test_arbiter_starts_with_static_policy():
    env, nodes, system = make_system()
    arb = PolicyArbiter(system.mapper, GMin(), MBF(system.sft))
    assert arb.active_policy.name == "GMin"
    assert not arb.switched


def test_arbiter_switches_after_enough_feedback():
    env, nodes, system = make_system()
    arb = PolicyArbiter(
        system.mapper, GMin(), MBF(system.sft), min_profiles=3, min_distinct_apps=2
    )
    arb.deliver_feedback(profile("MC"))
    arb.deliver_feedback(profile("MC"))
    assert not arb.switched  # only one distinct app
    arb.deliver_feedback(profile("DC"))
    assert arb.switched
    assert arb.active_policy.name == "MBF"
    assert arb.switched_at_profile == 3
    assert arb.transitions == [(0, "GMin"), (3, "MBF")]


def test_arbiter_requires_distinct_apps():
    env, nodes, system = make_system()
    arb = PolicyArbiter(
        system.mapper, GMin(), MBF(system.sft), min_profiles=2, min_distinct_apps=3
    )
    for _ in range(5):
        arb.deliver_feedback(profile("MC"))
    assert not arb.switched


def test_arbiter_aligns_feedback_policy_sft():
    env, nodes, system = make_system()
    from repro.core.feedback import SchedulerFeedbackTable

    foreign = MBF(SchedulerFeedbackTable())
    arb = PolicyArbiter(system.mapper, GMin(), foreign)
    assert foreign.sft is system.sft  # re-pointed at the live table


def test_install_arbiter_rewires_device_sinks_end_to_end():
    env, nodes, system = make_system()
    arb = install_arbiter(
        system, GMin(), MBF(system.sft), min_profiles=2, min_distinct_apps=2
    )
    procs = []
    for i, short in enumerate(["BS", "GA", "BS", "GA"]):
        spec = app_by_short(short)
        sess = system.session(spec.short, nodes[0], tenant_id=f"t{i}")
        procs.append(env.process(run_request(env, sess, spec)))
    env.run(until=env.all_of(procs))
    # Profiles flowed through the arbiter and flipped the policy mid-run.
    assert arb.switched
    assert system.mapper.policy.name == "MBF"
    assert system.sft.known("BS") and system.sft.known("GA")

"""Tests for trace timelines and the scale-out extension harness."""

import numpy as np
import pytest

from repro.simgpu.trace import (
    BusyTracer,
    Interval,
    concurrency_timeline,
    utilization_timeline,
)
from repro.harness.runner import SCALE_QUICK
from repro.harness import scaleout


# -- BusyTracer edge cases ------------------------------------------------------


def test_tracer_rejects_double_begin():
    t = BusyTracer()
    t.begin("k", 0.0)
    with pytest.raises(ValueError):
        t.begin("k", 1.0)


def test_tracer_rejects_end_without_begin():
    t = BusyTracer()
    with pytest.raises(ValueError):
        t.end("k", 1.0)


def test_tracer_rejects_negative_interval():
    t = BusyTracer()
    t.begin("k", 5.0)
    with pytest.raises(ValueError):
        t.end("k", 1.0)


def test_tracer_drops_zero_duration_intervals():
    t = BusyTracer()
    t.begin("k", 3.0)
    t.end("k", 3.0)
    assert t.intervals == []
    # The pair is consumed: the key can be reopened.
    t.begin("k", 4.0)
    t.end("k", 6.0)
    assert len(t.intervals) == 1
    assert t.intervals[0].duration == pytest.approx(2.0)


def test_snapshot_skips_open_interval_at_horizon():
    t = BusyTracer()
    t.begin("k", 5.0)
    # A zero-length clipped interval would be degenerate: excluded.
    assert t.snapshot(horizon=5.0) == []
    assert t.snapshot(horizon=4.0) == []


def test_snapshot_clips_open_intervals():
    t = BusyTracer()
    t.begin("k", 2.0)
    snap = t.snapshot(horizon=10.0)
    assert len(snap) == 1
    assert snap[0].end == 10.0
    assert t.intervals == []  # still open in the tracer itself


def test_busy_fraction_overlapping_intervals_counted_once():
    t = BusyTracer()
    t.begin("a", 0.0)
    t.begin("b", 0.0)
    t.end("a", 5.0)
    t.end("b", 5.0)
    assert t.busy_fraction(0.0, 10.0) == pytest.approx(0.5)


def test_busy_fraction_empty_window():
    t = BusyTracer()
    assert t.busy_fraction(5.0, 5.0) == 0.0
    assert t.busy_fraction(0.0, 10.0) == 0.0


def test_busy_fraction_inverted_window_is_zero():
    t = BusyTracer()
    t.begin("k", 0.0)
    t.end("k", 10.0)
    assert t.busy_fraction(8.0, 2.0) == 0.0


# -- timelines -----------------------------------------------------------------------


def test_utilization_timeline_full_coverage_is_100():
    iv = [Interval("k", 0.0, 10.0)]
    _, util = utilization_timeline(iv, 0.0, 10.0, bins=10)
    assert np.allclose(util, 100.0)


def test_utilization_timeline_merges_overlapping_intervals():
    # Two overlapping intervals cover [0, 6) once — not 150%.
    ivs = [Interval("a", 0.0, 4.0), Interval("b", 2.0, 6.0)]
    _, util = utilization_timeline(ivs, 0.0, 6.0, bins=6)
    assert np.allclose(util, 100.0)
    # Coverage caps at 100 even with many stacked intervals.
    ivs = [Interval(i, 0.0, 10.0) for i in range(5)]
    _, util = utilization_timeline(ivs, 0.0, 10.0, bins=4)
    assert np.allclose(util, 100.0)


def test_utilization_timeline_gap_between_merged_spans():
    ivs = [Interval("a", 0.0, 2.0), Interval("b", 1.0, 2.0), Interval("c", 8.0, 10.0)]
    _, util = utilization_timeline(ivs, 0.0, 10.0, bins=5)
    assert util[0] == pytest.approx(100.0)  # [0,2) fully covered once
    assert np.allclose(util[1:4], 0.0)
    assert util[4] == pytest.approx(100.0)


def test_utilization_timeline_validation():
    with pytest.raises(ValueError):
        utilization_timeline([], 5.0, 5.0)
    with pytest.raises(ValueError):
        utilization_timeline([], 0.0, 1.0, bins=0)


def test_concurrency_timeline_counts_overlap():
    ivs = [Interval("a", 0.0, 10.0), Interval("b", 0.0, 10.0)]
    _, conc = concurrency_timeline(ivs, 0.0, 10.0, bins=5)
    assert np.allclose(conc, 2.0)


def test_concurrency_timeline_partial():
    ivs = [Interval("a", 0.0, 5.0)]
    _, conc = concurrency_timeline(ivs, 0.0, 10.0, bins=2)
    assert conc[0] == pytest.approx(1.0)
    assert conc[1] == pytest.approx(0.0)


def test_concurrency_timeline_validation():
    with pytest.raises(ValueError):
        concurrency_timeline([], 3.0, 3.0)


# -- scale-out extension -----------------------------------------------------------------


def test_scaleout_monotone_improvement():
    data = scaleout.run(SCALE_QUICK.scaled(requests_per_stream=5), max_nodes=2)
    assert set(data) == {1, 2}
    assert data[1]["gpus"] == 2
    assert data[2]["gpus"] == 4
    # More GPUs never hurt this GPU-bound aggregate workload.
    assert data[2]["mean_completion_s"] <= data[1]["mean_completion_s"] * 1.05
    assert data[1]["speedup_vs_1node"] == pytest.approx(1.0)


def test_n_node_cluster_builder():
    from repro.sim import Environment

    env = Environment()
    nodes, net = scaleout.build_n_node_cluster(3)(env)
    assert len(nodes) == 3
    assert all(n.device_count == 2 for n in nodes)
    assert len({n.hostname for n in nodes}) == 3

"""SLO targets, burn-rate windows and the --slo spec parser (ISSUE 2)."""

import pytest

from repro.obs import SloMonitor, SloTarget, Telemetry, parse_slo_spec


def latency_monitor(latency_s=1.0, fraction=0.9, window_s=10.0):
    return SloMonitor(
        [SloTarget(app="BS", latency_s=latency_s, target_fraction=fraction)],
        window_s=window_s,
    )


class TestSloTarget:
    def test_requires_some_objective(self):
        with pytest.raises(ValueError, match="latency or throughput"):
            SloTarget(app="BS")

    def test_rejects_non_positive_latency(self):
        with pytest.raises(ValueError, match="latency"):
            SloTarget(app="BS", latency_s=0.0)

    def test_rejects_non_positive_throughput(self):
        with pytest.raises(ValueError, match="throughput"):
            SloTarget(app="BS", throughput_rps=-1.0)

    def test_rejects_fraction_outside_open_interval(self):
        for bad in (0.0, 1.0, 1.5):
            with pytest.raises(ValueError, match="fraction"):
                SloTarget(app="BS", latency_s=1.0, target_fraction=bad)

    def test_error_budget(self):
        tgt = SloTarget(app="BS", latency_s=1.0, target_fraction=0.95)
        assert tgt.error_budget == pytest.approx(0.05)

    def test_label_mentions_both_objectives(self):
        tgt = SloTarget(app="BS", latency_s=2.5, throughput_rps=0.5)
        assert "lat<=2.5s" in tgt.label()
        assert "tput>=0.5/s" in tgt.label()


class TestSloMonitorValidation:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError, match="window"):
            SloMonitor([SloTarget(app="*", latency_s=1.0)], window_s=0.0)

    def test_rejects_empty_target_list(self):
        with pytest.raises(ValueError, match="target"):
            SloMonitor([], window_s=10.0)


class TestBurnRateEdges:
    def test_empty_window_burns_nothing(self):
        mon = latency_monitor()
        assert mon.burn_rate("BS") == 0.0
        assert mon.burn_rate("no-such-app") == 0.0

    def test_exact_boundary_completion_is_compliant(self):
        mon = latency_monitor(latency_s=1.0)
        mon.observe(t=0.0, app="BS", tenant="t0", completion_s=1.0)
        assert mon.total_violations == 0
        assert mon.burn_rate("BS") == 0.0

    def test_violation_burn_is_fraction_over_budget(self):
        mon = latency_monitor(latency_s=1.0, fraction=0.9)
        mon.observe(t=0.0, app="BS", tenant="t0", completion_s=0.5)
        mon.observe(t=1.0, app="BS", tenant="t0", completion_s=2.0)
        # 1 of 2 samples violating over a 0.1 budget -> burn 5.0.
        assert mon.burn_rate("BS") == pytest.approx(5.0)
        assert mon.total_violations == 1
        v = mon.violations[0]
        assert (v.kind, v.app, v.observed, v.threshold) == ("latency", "BS", 2.0, 1.0)

    def test_window_eviction_forgets_old_violations(self):
        mon = latency_monitor(latency_s=1.0, window_s=10.0)
        mon.observe(t=0.0, app="BS", tenant="t0", completion_s=5.0)  # violates
        assert mon.burn_rate("BS") > 0
        mon.observe(t=20.0, app="BS", tenant="t0", completion_s=0.5)
        # The violation at t=0 fell out of the [10, 20] window.
        assert mon.burn_rate("BS") == 0.0
        # ...but lifetime counters keep it.
        assert mon.summary()[0]["latency_violations"] == 1

    def test_wildcard_target_matches_every_app(self):
        mon = SloMonitor([SloTarget(app="*", latency_s=1.0)], window_s=10.0)
        mon.observe(t=0.0, app="BS", tenant="t0", completion_s=2.0)
        mon.observe(t=1.0, app="SN", tenant="t1", completion_s=3.0)
        assert mon.total_violations == 2
        assert mon.summary()[0]["observed"] == 2


class TestThroughputFloor:
    def test_no_check_before_a_full_window(self):
        mon = SloMonitor([SloTarget(app="BS", throughput_rps=1.0)], window_s=10.0)
        mon.tick(t=5.0)  # only half a window of history exists
        assert mon.total_violations == 0

    def test_edge_triggered_not_per_tick(self):
        mon = SloMonitor([SloTarget(app="BS", throughput_rps=1.0)], window_s=10.0)
        # 2 completions in a 10 s window = 0.2 rps, below the 1.0 floor.
        mon.observe(t=11.0, app="BS", tenant="t0", completion_s=0.1)
        mon.observe(t=12.0, app="BS", tenant="t0", completion_s=0.1)
        for t in (13.0, 14.0, 15.0):
            mon.tick(t)
        assert mon.total_violations == 1  # sustained shortfall, one event
        assert mon.violations[0].kind == "throughput"
        assert mon.violations[0].observed == pytest.approx(0.2)

    def test_recovery_rearms_the_trigger(self):
        mon = SloMonitor([SloTarget(app="BS", throughput_rps=0.3)], window_s=10.0)
        mon.tick(t=10.0)  # empty window: first violation
        assert mon.total_violations == 1
        for t in range(11, 16):  # recover: 5 completions in window
            mon.observe(t=float(t), app="BS", tenant="t0", completion_s=0.1)
        mon.tick(t=15.0)
        assert mon.total_violations == 1
        # Everything evicted by t=26 -> below floor again: second event.
        mon.tick(t=26.0)
        assert mon.total_violations == 2


class TestTelemetryMirroring:
    def test_violations_reach_counter_and_decision_log(self):
        tel = Telemetry()
        mon = latency_monitor(latency_s=1.0).bind(tel)
        mon.observe(t=0.0, app="BS", tenant="t0", completion_s=3.0)
        assert tel.counter("slo.violations", app="BS", kind="latency").value == 1
        events = tel.decisions.events_of("slo")
        assert len(events) == 1
        assert "BS" in events[0].name
        assert events[0].args["observed"] == pytest.approx(3.0)

    def test_unbound_monitor_still_records_locally(self):
        mon = latency_monitor(latency_s=1.0)
        mon.observe(t=0.0, app="BS", tenant="t0", completion_s=3.0)
        assert mon.total_violations == 1
        assert mon.violations[0].run_label == ""


class TestParseSloSpec:
    def test_latency_item_with_default_fraction(self):
        mon = parse_slo_spec("MC:2.5")
        assert len(mon.targets) == 1
        tgt = mon.targets[0]
        assert (tgt.app, tgt.latency_s, tgt.target_fraction) == ("MC", 2.5, 0.95)

    def test_latency_item_with_fraction_and_wildcard(self):
        mon = parse_slo_spec("*:1.0:0.9")
        tgt = mon.targets[0]
        assert (tgt.app, tgt.latency_s, tgt.target_fraction) == ("*", 1.0, 0.9)

    def test_throughput_item(self):
        mon = parse_slo_spec("BS@0.5")
        tgt = mon.targets[0]
        assert (tgt.app, tgt.throughput_rps) == ("BS", 0.5)

    def test_window_override_and_multiple_items(self):
        mon = parse_slo_spec("MC:2.5, BS@0.5, window=20")
        assert mon.window_s == 20.0
        assert len(mon.targets) == 2

    def test_rejects_garbage_item(self):
        with pytest.raises(ValueError, match="bad SLO item"):
            parse_slo_spec("MC")

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            parse_slo_spec("MC:1.0,window=abc")
        with pytest.raises(ValueError, match="window"):
            parse_slo_spec("MC:1.0,window=0")

    def test_rejects_empty_spec(self):
        with pytest.raises(ValueError, match="no targets"):
            parse_slo_spec("window=10")

    def test_rejects_invalid_target_values(self):
        with pytest.raises(ValueError, match="bad SLO item"):
            parse_slo_spec("MC:-1")
        with pytest.raises(ValueError, match="bad SLO item"):
            parse_slo_spec("MC@0")

"""Smoke tests: every examples/ script runs end-to-end at tiny scale.

The examples are documentation that executes; these tests import each
script by path, shrink its module-level size knobs, and run ``main()``
so API drift in the public surface they exercise fails CI instead of
the next reader.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_complete():
    names = {p.stem for p in EXAMPLES.glob("*.py")}
    assert names == {
        "quickstart", "fairshare_tenants", "policy_explorer", "cloud_service_sim",
    }, "new example scripts need a smoke test here"


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "CUDA runtime" in out
    assert "Strings" in out
    assert "speedup over the CUDA runtime" in out


def test_fairshare_tenants(capsys, monkeypatch):
    mod = load_example("fairshare_tenants")
    monkeypatch.setattr(mod, "WINDOW_S", 90.0)
    mod.main()
    out = capsys.readouterr().out
    assert "gold" in out and "bronze" in out
    assert "Jain" in out or "fairness" in out


def test_policy_explorer(capsys, monkeypatch):
    mod = load_example("policy_explorer")
    monkeypatch.setattr(mod, "WINDOW_S", 90.0)
    mod.main()
    out = capsys.readouterr().out
    for policy in ("no gating", "TFS", "LAS", "PS"):
        assert policy in out


def test_cloud_service_sim(capsys, monkeypatch):
    mod = load_example("cloud_service_sim")
    monkeypatch.setattr(mod, "REQUESTS", 14)
    mod.main()
    out = capsys.readouterr().out
    for label in ("CUDA", "GMin-Rain", "GMin-Strings"):
        assert label in out
    assert "speedup vs CUDA" in out


@pytest.mark.parametrize(
    "name", ["quickstart", "fairshare_tenants", "policy_explorer", "cloud_service_sim"]
)
def test_examples_have_runnable_docstring(name):
    mod = load_example(name)
    assert mod.__doc__ and "Run:" in mod.__doc__

"""Ring-buffered series and the sim-time sampler (ISSUE 2)."""

import pytest

import repro.obs as obs
from repro.obs import NULL_TELEMETRY, Sampler, Series, Telemetry
from repro.obs.timeseries import NULL_SERIES


class TestSeriesRingBuffer:
    def test_appends_in_order_below_capacity(self):
        s = Series("x", capacity=8)
        for i in range(5):
            s.append(float(i), float(i * 10))
        assert len(s) == 5
        assert s.dropped == 0
        assert s.points() == [(float(i), float(i * 10)) for i in range(5)]
        assert s.last() == (4.0, 40.0)

    def test_wraps_around_keeping_the_tail(self):
        s = Series("x", capacity=4)
        for i in range(10):
            s.append(float(i), float(i))
        assert len(s) == 4
        assert s.total_appended == 10
        assert s.dropped == 6
        # Oldest samples were overwritten; the retained window is the tail,
        # still in chronological order.
        assert s.times() == [6.0, 7.0, 8.0, 9.0]
        assert s.last() == (9.0, 9.0)

    def test_wrap_exactly_at_capacity_boundary(self):
        s = Series("x", capacity=3)
        for i in range(3):
            s.append(float(i), float(i))
        assert s.dropped == 0
        assert s.times() == [0.0, 1.0, 2.0]
        s.append(3.0, 3.0)
        assert s.times() == [1.0, 2.0, 3.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            Series("x", capacity=0)

    def test_series_name_includes_labels(self):
        s = Series("gpu.util", gid=0, run="fig9")
        assert s.series == "gpu.util{gid=0,run=fig9}"


class TestDownsample:
    def test_short_series_returned_unchanged(self):
        s = Series("x", capacity=16)
        for i in range(5):
            s.append(float(i), float(i))
        assert s.downsample(10) == s.points()

    def test_bucket_means_preserve_average(self):
        s = Series("x", capacity=100)
        for i in range(100):
            s.append(float(i), float(i))
        pts = s.downsample(10)
        assert len(pts) == 10
        # Equal-count buckets of a linear ramp keep the global mean.
        assert sum(v for _, v in pts) / 10 == pytest.approx(49.5)
        # Times stay monotonically increasing.
        times = [t for t, _ in pts]
        assert times == sorted(times)

    def test_single_point_budget(self):
        s = Series("x", capacity=10)
        for i in range(10):
            s.append(float(i), 2.0)
        pts = s.downsample(1)
        assert len(pts) == 1
        assert pts[0][1] == pytest.approx(2.0)

    def test_rejects_non_positive_budget(self):
        s = Series("x")
        with pytest.raises(ValueError, match="max_points"):
            s.downsample(0)


class TestTelemetryFactory:
    def test_timeseries_get_or_create_by_name_and_labels(self):
        tel = Telemetry()
        a = tel.timeseries("gpu.util", gid=0)
        b = tel.timeseries("gpu.util", gid=0)
        c = tel.timeseries("gpu.util", gid=1)
        assert a is b
        assert a is not c
        assert len(tel.series) == 2

    def test_null_registry_returns_noop_singleton(self):
        s = NULL_TELEMETRY.timeseries("gpu.util", gid=0)
        assert s is NULL_SERIES
        s.append(1.0, 2.0)
        assert len(s) == 0
        assert len(NULL_TELEMETRY.series) == 0


class TestSamplerValidation:
    def test_rejects_zero_interval(self):
        with pytest.raises(ValueError, match="interval"):
            Sampler(interval_s=0.0)

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError, match="interval"):
            Sampler(interval_s=-1.0)


class TestSamplerIntegration:
    def _run(self, tel, interval=0.5, with_sampler=True):
        from repro.apps.catalog import ALL_APPS
        from repro.cluster import build_small_server
        from repro.harness.runner import run_stream_experiment, system_factories
        from repro.sim.rng import RandomStream
        from repro.workloads.streams import exponential_stream

        apps = {a.short: a for a in ALL_APPS}
        streams = [
            exponential_stream(
                apps["BS"], RandomStream(7, "obs-ts", "BS"), 3, tenant_id="t0"
            ),
            exponential_stream(
                apps["SN"], RandomStream(7, "obs-ts", "SN"), 3, tenant_id="t1"
            ),
        ]
        if with_sampler:
            tel.sampler = Sampler(interval_s=interval, capacity=256)
        return run_stream_experiment(
            system_factories()["GMin-Strings"], streams, build_small_server,
            label="sampler-test", telemetry=tel,
        )

    def test_sampler_records_per_gpu_series(self):
        tel = Telemetry()
        self._run(tel)
        names = {s.name for s in tel.series.values()}
        for expected in ("gpu.util", "gpu.active", "gpu.copy_queue",
                         "gpu.rcb_live", "gpu.signal_rate",
                         "dst.load", "dst.est_load_s", "dst.weight",
                         "sft.rows", "sft.updates"):
            assert expected in names, f"missing series {expected}"
        assert tel.sampler.ticks > 0
        util = [s for s in tel.series.values() if s.name == "gpu.util"]
        assert len(util) >= 2  # one per GPU
        for s in util:
            assert all(0.0 <= v <= 1.0 for v in s.values())
        assert tel.sft_state.get("sampler-test") is not None

    def test_sampler_not_started_on_null_registry(self):
        result = self._run(obs.current(), with_sampler=False)  # NULL_TELEMETRY
        assert result.results  # run completed
        assert len(NULL_TELEMETRY.series) == 0

    def test_sampling_only_mode_skips_the_per_op_layer(self):
        from repro.obs import SamplingTelemetry

        tel = SamplingTelemetry()
        self._run(tel)
        assert tel.series  # the sampler ran...
        assert tel.sampler.ticks > 0
        assert not tel.spans  # ...but per-op instrumentation stayed off
        assert len(tel.attribution) == 0
        assert len(tel.decisions) == 0

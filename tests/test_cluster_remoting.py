"""Unit tests for cluster nodes, network model, RPC costs and backends."""

import pytest

from repro.sim import Environment
from repro.simgpu import CopyKind, TESLA_C2050
from repro.cluster import Network, Node, build_paper_supernode, build_small_server
from repro.remoting import BackendDaemon, RpcCostModel


# -- Network ------------------------------------------------------------------


def test_network_validation():
    with pytest.raises(ValueError):
        Network(latency_s=-1)
    with pytest.raises(ValueError):
        Network(bandwidth_gbps=0)


def test_bandwidth_conversion_bits_to_bytes():
    net = Network(bandwidth_gbps=1.0)
    assert net.bytes_per_second == pytest.approx(125e6)


def test_default_link_is_10gbps_dedicated():
    # See repro.cluster.network docstring for the calibration rationale.
    assert Network().bandwidth_gbps == pytest.approx(10.0)


def test_remote_transfer_includes_latency_and_wire_time():
    net = Network(latency_s=100e-6, bandwidth_gbps=1.0)
    d = net.transfer_delay(125_000_000, local=False)
    assert d == pytest.approx(1.0 + 100e-6)


def test_local_transfer_is_fast_shared_memory():
    net = Network()
    assert net.transfer_delay(12_000_000, local=True) == pytest.approx(1e-3)


def test_zero_byte_transfer_free():
    net = Network()
    assert net.transfer_delay(0, local=False) == 0.0


def test_message_delay_local_vs_remote():
    net = Network()
    assert net.message_delay(local=True) < net.message_delay(local=False)


# -- Nodes -------------------------------------------------------------------


def test_small_server_is_one_node_two_gpus():
    env = Environment()
    nodes, _net = build_small_server(env)
    assert len(nodes) == 1
    assert nodes[0].device_count == 2
    assert nodes[0].devices[0].spec.name == "Quadro 2000"
    assert nodes[0].devices[1].spec.name == "Tesla C2050"


def test_paper_supernode_is_two_nodes_four_gpus():
    env = Environment()
    nodes, _net = build_paper_supernode(env)
    assert [n.device_count for n in nodes] == [2, 2]
    names = [d.spec.name for n in nodes for d in n.devices]
    assert names == ["Quadro 2000", "Tesla C2050", "Quadro 4000", "Tesla C2070"]


def test_node_hostnames_distinct():
    env = Environment()
    nodes, _ = build_paper_supernode(env)
    assert nodes[0].hostname != nodes[1].hostname


# -- RPC cost model --------------------------------------------------------------


def test_rpc_roundtrip_local_is_microseconds():
    rpc = RpcCostModel()
    net = Network()
    rtt = rpc.roundtrip_delay(net, local=True)
    assert 0 < rtt < 50e-6


def test_rpc_remote_roundtrip_dominated_by_latency():
    rpc = RpcCostModel()
    net = Network(latency_s=120e-6)
    rtt = rpc.roundtrip_delay(net, local=False)
    assert rtt > 2 * 120e-6


def test_rpc_bulk_data_remote_charges_wire_time():
    rpc = RpcCostModel()
    net = Network(bandwidth_gbps=1.0)
    assert rpc.bulk_data_delay(net, local=False, nbytes=125_000_000) > 1.0


def test_remote_still_more_expensive_than_local():
    net = Network()
    assert net.transfer_delay(10_000_000, local=False) > net.transfer_delay(
        10_000_000, local=True
    )


def test_staging_delay_scales():
    rpc = RpcCostModel(pinned_staging_gbps=12.0)
    assert rpc.staging_delay(12_000_000_000) == pytest.approx(1.0)
    assert rpc.staging_delay(0) == 0.0


# -- Backend daemon -----------------------------------------------------------------


def test_device_info_lists_local_gpus():
    env = Environment()
    nodes, _ = build_small_server(env)
    daemon = BackendDaemon(env, nodes[0])
    info = daemon.device_info()
    assert [(h, i) for h, i, _ in info] == [("nodeA", 0), ("nodeA", 1)]


def test_design1_workers_have_separate_contexts():
    env = Environment()
    nodes, _ = build_small_server(env)
    daemon = BackendDaemon(env, nodes[0])
    w1 = daemon.design1_worker("app1", local_device=1)
    w2 = daemon.design1_worker("app2", local_device=1)
    assert w1.context is not w2.context
    assert len(nodes[0].devices[1].contexts) == 2


def test_design3_workers_share_one_context_per_device():
    env = Environment()
    nodes, _ = build_small_server(env)
    daemon = BackendDaemon(env, nodes[0])
    w1 = daemon.design3_worker("app1", local_device=1)
    w2 = daemon.design3_worker("app2", local_device=1)
    w3 = daemon.design3_worker("app3", local_device=0)
    assert w1.context is w2.context
    assert w3.context is not w1.context
    assert len(nodes[0].devices[1].contexts) == 1
    assert daemon.resident_tenants(1) == 2


def test_design3_tenant_count_drops_on_exit():
    env = Environment()
    nodes, _ = build_small_server(env)
    daemon = BackendDaemon(env, nodes[0])
    w1 = daemon.design3_worker("app1", local_device=0)
    assert daemon.resident_tenants(0) == 1
    w1.thread_exit()
    assert daemon.resident_tenants(0) == 0


def test_design2_master_serializes_calls():
    env = Environment()
    nodes, _ = build_small_server(env)
    daemon = BackendDaemon(env, nodes[0])
    master = daemon.design2_master(local_device=1)
    assert daemon.design2_master(1) is master  # memoized
    order = []

    def call_a(thread):
        yield thread.memcpy(30_000_000, CopyKind.H2D)  # 10 ms blocking
        order.append(("a", env.now))
        return "ra"

    def call_b(thread):
        order.append(("b", env.now))
        yield env.timeout(0)
        return "rb"

    results = []

    def client(env):
        ea = master.submit(call_a)
        eb = master.submit(call_b)
        ra = yield ea
        rb = yield eb
        results.append((ra, rb))

    env.process(client(env))
    env.run()
    # b only started after a's blocking copy finished: head-of-line blocking.
    assert order[0][0] == "a"
    assert order[1][1] >= order[0][1]
    assert results == [("ra", "rb")]
    assert master.calls_served == 2


def test_design2_master_marshals_exceptions():
    env = Environment()
    nodes, _ = build_small_server(env)
    daemon = BackendDaemon(env, nodes[0])
    master = daemon.design2_master(local_device=0)

    def bad_call(thread):
        yield env.timeout(0)
        raise ValueError("downstream")

    caught = []

    def client(env):
        try:
            yield master.submit(bad_call)
        except ValueError as exc:
            caught.append(str(exc))

    env.process(client(env))
    env.run()
    assert caught == ["downstream"]


def test_design2_master_survives_failing_call():
    # Regression: a call that raises must only fail its submitter's event;
    # the master's serve loop keeps running and serves later calls.
    env = Environment()
    nodes, _ = build_small_server(env)
    daemon = BackendDaemon(env, nodes[0])
    master = daemon.design2_master(local_device=0)

    def bad_call(thread):
        yield env.timeout(0)
        raise ValueError("boom")

    def good_call(thread):
        yield env.timeout(0)
        return "still alive"

    outcomes = []

    def client(env):
        try:
            yield master.submit(bad_call)
        except ValueError as exc:
            outcomes.append(("failed", str(exc)))
        yield env.timeout(1.0)
        outcomes.append(("ok", (yield master.submit(good_call))))

    env.process(client(env))
    env.run()
    assert outcomes == [("failed", "boom"), ("ok", "still alive")]
    assert master.calls_served == 1  # failed call is not counted as served

"""Unit tests for device specs and op descriptions."""

import pytest

from repro.simgpu import (
    DEVICE_CATALOG,
    QUADRO_2000,
    QUADRO_4000,
    TESLA_C2050,
    TESLA_C2070,
    CopyKind,
    CopyOp,
    KernelOp,
    device_by_name,
)


def test_catalog_contains_the_four_paper_cards():
    assert set(DEVICE_CATALOG) == {
        "Quadro 2000",
        "Tesla C2050",
        "Quadro 4000",
        "Tesla C2070",
    }


def test_device_by_name_roundtrip():
    assert device_by_name("Tesla C2050") is TESLA_C2050


def test_device_by_name_unknown():
    with pytest.raises(KeyError):
        device_by_name("GeForce 9000")


def test_tesla_cards_have_two_copy_engines():
    assert TESLA_C2050.copy_engines == 2
    assert TESLA_C2070.copy_engines == 2
    assert QUADRO_2000.copy_engines == 1
    assert QUADRO_4000.copy_engines == 1


def test_teslas_are_faster_than_quadros():
    assert TESLA_C2050.peak_gflops > QUADRO_2000.peak_gflops
    assert TESLA_C2050.mem_bandwidth_gbps > QUADRO_4000.mem_bandwidth_gbps


def test_compute_weight_reference_is_one():
    assert TESLA_C2050.compute_weight(TESLA_C2050) == pytest.approx(1.0)


def test_compute_weight_ordering():
    w20 = QUADRO_2000.compute_weight(TESLA_C2050)
    w40 = QUADRO_4000.compute_weight(TESLA_C2050)
    w70 = TESLA_C2070.compute_weight(TESLA_C2050)
    assert w20 < w40 < w70 == pytest.approx(1.0)


def test_spec_validation_rejects_bad_copy_engines():
    with pytest.raises(ValueError):
        QUADRO_2000.scaled(copy_engines=3)


def test_spec_validation_rejects_nonpositive():
    with pytest.raises(ValueError):
        QUADRO_2000.scaled(peak_gflops=0)


def test_spec_scaled_overrides():
    s = TESLA_C2050.scaled(mem_capacity_mb=128)
    assert s.mem_capacity_mb == 128
    assert s.name == TESLA_C2050.name
    assert TESLA_C2050.mem_capacity_mb == 3072  # original untouched


def test_mem_capacity_bytes():
    assert QUADRO_2000.mem_capacity_bytes == 1024 * 1024 * 1024


# -- KernelOp ----------------------------------------------------------------


def test_kernel_solo_time_compute_bound():
    # 103 GFLOP, negligible memory: bound by compute on a C2050.
    k = KernelOp(flops=103.0, bytes_accessed=0.001)
    assert k.solo_time(TESLA_C2050) == pytest.approx(0.1, rel=1e-6)
    assert k.memory_boundedness(TESLA_C2050) < 0.01


def test_kernel_solo_time_memory_bound():
    # 14.4 GB of traffic, negligible compute: bound by bandwidth.
    k = KernelOp(flops=0.001, bytes_accessed=14.4)
    assert k.solo_time(TESLA_C2050) == pytest.approx(0.1, rel=1e-6)
    assert k.memory_boundedness(TESLA_C2050) == pytest.approx(1.0)


def test_kernel_is_slower_on_weaker_device():
    k = KernelOp(flops=10.0, bytes_accessed=1.0)
    assert k.solo_time(QUADRO_2000) > k.solo_time(TESLA_C2050)


def test_kernel_boundedness_depends_on_device():
    # Flops/byte ratio that is compute-bound on a Quadro 2000 but
    # memory-bound on a C2050 is impossible (C2050 is better at both);
    # instead check that a balanced kernel is *more* memory bound on the
    # bandwidth-starved Quadro 2000.
    k = KernelOp(flops=10.0, bytes_accessed=1.0)
    assert k.memory_boundedness(QUADRO_2000) > k.memory_boundedness(TESLA_C2050)


def test_kernel_achieved_bandwidth():
    k = KernelOp(flops=0.001, bytes_accessed=14.4)
    assert k.achieved_bandwidth_gbps(TESLA_C2050) == pytest.approx(144.0, rel=1e-3)


def test_kernel_validation():
    with pytest.raises(ValueError):
        KernelOp(flops=-1, bytes_accessed=0)
    with pytest.raises(ValueError):
        KernelOp(flops=0, bytes_accessed=0)
    with pytest.raises(ValueError):
        KernelOp(flops=1, bytes_accessed=0, occupancy=0.0)
    with pytest.raises(ValueError):
        KernelOp(flops=1, bytes_accessed=0, occupancy=1.5)


def test_kernel_ids_unique():
    a = KernelOp(flops=1, bytes_accessed=0)
    b = KernelOp(flops=1, bytes_accessed=0)
    assert a.op_id != b.op_id


# -- CopyOp ------------------------------------------------------------------


def test_copy_pinned_faster_than_pageable():
    pinned = CopyOp(nbytes=100_000_000, kind=CopyKind.H2D, pinned=True)
    pageable = CopyOp(nbytes=100_000_000, kind=CopyKind.H2D, pinned=False)
    assert pinned.solo_time(TESLA_C2050) < pageable.solo_time(TESLA_C2050)


def test_copy_time_scales_with_size():
    small = CopyOp(nbytes=1_000_000, kind=CopyKind.H2D, pinned=True)
    big = CopyOp(nbytes=10_000_000, kind=CopyKind.H2D, pinned=True)
    assert big.solo_time(TESLA_C2050) == pytest.approx(
        10 * small.solo_time(TESLA_C2050), rel=1e-6
    )


def test_copy_pinned_rate_matches_spec():
    op = CopyOp(nbytes=5_800_000_000, kind=CopyKind.H2D, pinned=True)
    assert op.solo_time(TESLA_C2050) == pytest.approx(1.0, rel=1e-6)


def test_d2d_copy_uses_device_bandwidth():
    op = CopyOp(nbytes=72_000_000_000 // 2, kind=CopyKind.D2D)
    # read+write at 144 GB/s
    assert op.solo_time(TESLA_C2050) == pytest.approx(0.5, rel=1e-6)


def test_copy_validation():
    with pytest.raises(ValueError):
        CopyOp(nbytes=-5, kind=CopyKind.H2D)
    with pytest.raises(TypeError):
        CopyOp(nbytes=5, kind="h2d")

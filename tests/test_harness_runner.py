"""Unit tests for the harness machinery (runner, format, pairsweep helpers)."""

import pytest

from repro.sim import Environment
from repro.cluster import build_single_gpu_server, build_small_server
from repro.core.policies import GMin, GRR
from repro.core.systems import StringsSystem
from repro.sim.rng import RandomStream
from repro.apps import app_by_short
from repro.workloads import exponential_stream
from repro.harness.format import format_series, format_table, geomean
from repro.harness.pairsweep import family_of
from repro.harness.runner import (
    SCALE_PAPER,
    SCALE_QUICK,
    closed_loop_shared_run,
    prewarm_sft,
    run_stream_experiment,
    solo_completion_time,
    system_factories,
)


def test_scales():
    assert SCALE_QUICK.requests_per_stream < SCALE_PAPER.requests_per_stream
    assert SCALE_PAPER.scaled(seed=7).seed == 7
    assert SCALE_PAPER.seed == 42  # original untouched


def test_system_factories_cover_paper_labels():
    facts = system_factories()
    expected = {
        "CUDA", "GRR-Rain", "GMin-Rain", "GWtMin-Rain",
        "GRR-Strings", "GMin-Strings", "GWtMin-Strings",
        "TFS-Rain", "TFS-Strings",
        "GWtMin+LAS-Rain", "GWtMin+LAS-Strings", "GWtMin+PS-Strings",
        "LAS-Rain", "LAS-Strings", "PS-Strings",
        "RTF-Rain", "GUF-Rain", "RTF-Strings", "GUF-Strings",
        "DTF-Strings", "MBF-Strings",
    }
    assert expected <= set(facts)


def test_factories_build_working_systems():
    facts = system_factories()
    env = Environment()
    nodes, net = build_small_server(env)
    for label in ("GWtMin+LAS-Strings", "MBF-Strings", "TFS-Rain"):
        system = facts[label](env, nodes, net)
        assert hasattr(system, "session")


def test_run_stream_experiment_collects_all_requests():
    facts = system_factories()
    app = app_by_short("GA")
    stream = exponential_stream(app, RandomStream(1), 5, load_factor=1.0)
    run = run_stream_experiment(
        facts["GMin-Strings"], [stream], build_small_server, label="t"
    )
    assert len(run.results) == 5
    assert run.sim_time_s > 0
    assert set(run.per_app()) == {"GA"}


def test_run_stream_experiment_deterministic_under_seed():
    facts = system_factories()
    app = app_by_short("BS")

    def once():
        stream = exponential_stream(app, RandomStream(9, "det"), 4, 1.2)
        run = run_stream_experiment(
            facts["GRR-Strings"], [stream], build_small_server
        )
        return sorted(r.completion_s for r in run.results)

    assert once() == once()


def test_prewarm_sft_populates_all_apps():
    env = Environment()
    nodes, net = build_small_server(env)
    system = StringsSystem(env, nodes, net, balancing=GMin())
    prewarm_sft(system)
    from repro.apps import ALL_APPS

    for app in ALL_APPS:
        assert system.sft.known(app.short)
    row = system.sft.lookup("MC")
    assert row.transfer_fraction > 0.9  # MC is transfer-dominated


def test_prewarm_sft_noop_for_cuda_baseline():
    facts = system_factories()
    env = Environment()
    nodes, net = build_small_server(env)
    system = facts["CUDA"](env, nodes, net)
    prewarm_sft(system)  # no mapper: must not raise


def test_solo_completion_time_close_to_analytic():
    facts = system_factories()
    app = app_by_short("BS")
    t = solo_completion_time(facts["CUDA"], app, build_single_gpu_server)
    assert t == pytest.approx(app.solo_runtime_s(), rel=0.05)


def test_closed_loop_counts_at_least_one_request_each():
    facts = system_factories()
    apps = [app_by_short("BS"), app_by_short("GA")]
    out = closed_loop_shared_run(
        facts["GMin-Strings"], apps, build_single_gpu_server, window_s=15.0
    )
    assert set(out) == {"BS", "GA"}
    assert all(v > 0 for v in out.values())


def test_family_of():
    assert family_of("GWtMin+LAS-Rain") == "Rain"
    assert family_of("MBF-Strings") == "Strings"


# -- formatting ------------------------------------------------------------------


def test_format_table_aligns():
    out = format_table(["a", "longer"], [[1.5, "x"], [22.25, "yy"]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "1.50" in out
    assert "22.25" in out


def test_format_table_empty_rows():
    out = format_table(["h1", "h2"], [])
    assert "h1" in out


def test_format_series():
    out = format_series("s", ["a", "b"], [1.234, 5.0], y_fmt="{:.1f}")
    assert out == "s: a:1.2 b:5.0"


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)

"""Wall-clock self-profiling (ISSUE 9): zone ledger, sampling profiler,
byte-determinism of profiled runs, and the streaming record encoder."""

import json
import threading
import time

import pytest

from repro.apps import app_by_short
from repro.cluster import build_small_server
from repro.harness.runner import run_stream_experiment, system_factories
from repro.obs import (
    DEFAULT_HZ,
    NO_ZONE,
    SamplingProfiler,
    Telemetry,
    ZoneProfiler,
    metrics_dict,
)
from repro.sim.rng import RandomStream
from repro.workloads import exponential_stream


# ---------------------------------------------------------------------------
# ZoneProfiler: nesting-aware self/total accounting
# ---------------------------------------------------------------------------


class TestZoneProfiler:
    def test_self_excludes_child_time(self):
        zp = ZoneProfiler()
        zp.push("outer")
        time.sleep(0.02)
        zp.push("inner")
        time.sleep(0.02)
        zp.pop()
        zp.pop()
        outer = zp.zones["outer"]
        inner = zp.zones["inner"]
        assert outer.calls == 1 and inner.calls == 1
        assert inner.self_s == pytest.approx(inner.total_s)
        # Outer's total covers both sleeps; its self time excludes inner.
        assert outer.total_s >= inner.total_s + 0.015
        assert outer.self_s == pytest.approx(outer.total_s - inner.total_s)

    def test_total_self_reconstructs_outermost_wall(self):
        zp = ZoneProfiler()
        t0 = time.perf_counter()
        zp.push("a")
        time.sleep(0.01)
        zp.push("b")
        time.sleep(0.01)
        zp.pop()
        zp.push("b")
        time.sleep(0.01)
        zp.pop()
        zp.pop()
        wall = time.perf_counter() - t0
        # Sum of self times over all zones == wall time inside "a".
        assert zp.total_self_s() == pytest.approx(zp.zones["a"].total_s)
        assert zp.total_self_s() <= wall
        assert zp.zones["b"].calls == 2

    def test_zone_context_manager_pops_on_exception(self):
        zp = ZoneProfiler()
        with pytest.raises(RuntimeError):
            with zp.zone("z"):
                assert zp.current == "z"
                raise RuntimeError("boom")
        assert zp.depth == 0
        assert zp.current == ""
        assert zp.zones["z"].calls == 1

    def test_current_tracks_top_of_stack(self):
        zp = ZoneProfiler()
        assert zp.current == ""
        zp.push("a")
        zp.push("b")
        assert zp.current == "b"
        zp.pop()
        assert zp.current == "a"
        zp.pop()
        assert zp.current == ""

    def test_ledger_dict_shares_sum_to_one(self):
        zp = ZoneProfiler()
        with zp.zone("x"):
            time.sleep(0.005)
        with zp.zone("y"):
            time.sleep(0.005)
        doc = zp.ledger_dict()
        assert doc["total_self_s"] > 0
        assert sum(z["self_share"] for z in doc["zones"]) == pytest.approx(1.0)
        assert {z["zone"] for z in doc["zones"]} == {"x", "y"}

    def test_format_ledger_empty(self):
        assert "(no zones recorded)" in ZoneProfiler().format_ledger()


# ---------------------------------------------------------------------------
# SamplingProfiler: collapsed stacks + speedscope document
# ---------------------------------------------------------------------------


class TestSamplingProfiler:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-1)

    def test_samples_tagged_with_live_zone(self):
        zp = ZoneProfiler()
        prof = SamplingProfiler(hz=500, perf=zp)
        with prof:
            with zp.zone("hot.zone"):
                deadline = time.perf_counter() + 0.2
                while time.perf_counter() < deadline:
                    sum(range(200))
        assert prof.sample_count > 0
        zones = prof.zone_counts()
        assert "hot.zone" in zones
        # The busy loop dominates the sampled window.
        assert zones["hot.zone"] >= prof.sample_count * 0.5

    def test_untagged_samples_fall_back_to_no_zone(self):
        prof = SamplingProfiler(hz=500)
        with prof:
            deadline = time.perf_counter() + 0.1
            while time.perf_counter() < deadline:
                sum(range(200))
        assert prof.sample_count > 0
        assert set(prof.zone_counts()) == {NO_ZONE}

    def test_collapsed_format(self):
        prof = SamplingProfiler(hz=500)
        with prof:
            deadline = time.perf_counter() + 0.1
            while time.perf_counter() < deadline:
                sum(range(200))
        text = prof.collapsed()
        assert text.endswith("\n")
        total = 0
        for line in text.splitlines():
            head, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            frames = head.split(";")
            assert frames[0] == NO_ZONE
            total += int(count)
        assert total == prof.sample_count

    def test_speedscope_document_is_well_formed(self):
        prof = SamplingProfiler(hz=500)
        with prof:
            deadline = time.perf_counter() + 0.1
            while time.perf_counter() < deadline:
                sum(range(200))
        doc = prof.speedscope(name="unit")
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        p = doc["profiles"][0]
        assert p["type"] == "sampled" and p["unit"] == "none"
        assert len(p["samples"]) == len(p["weights"])
        assert p["endValue"] == sum(p["weights"]) == prof.sample_count
        n = len(doc["shared"]["frames"])
        assert all(0 <= i < n for s in p["samples"] for i in s)
        # Round-trips through JSON.
        assert json.loads(json.dumps(doc)) == doc

    def test_start_twice_raises_stop_is_idempotent(self):
        prof = SamplingProfiler(hz=DEFAULT_HZ)
        prof.start()
        with pytest.raises(RuntimeError):
            prof.start()
        prof.stop()
        prof.stop()  # no-op
        assert prof.elapsed_s > 0

    def test_samples_target_thread_not_profiler_thread(self):
        prof = SamplingProfiler(hz=500)
        prof.start(target_thread_id=threading.get_ident())
        deadline = time.perf_counter() + 0.1
        while time.perf_counter() < deadline:
            sum(range(200))
        prof.stop()
        for (_zone, stack), _n in prof.samples.items():
            assert not any("repro-prof-sampler" in f for f in stack)
            assert stack  # root-first, non-empty


# ---------------------------------------------------------------------------
# Streaming record encoder: byte-identical to the reference json.dumps
# ---------------------------------------------------------------------------


def _reference_record(sp):
    return json.dumps(
        {
            "a": sp.args, "c": sp.cat, "e": sp.end, "id": sp.span_id,
            "k": "s", "n": sp.name, "p": sp.parent_id, "r": sp.run_id,
            "rl": sp.run_label, "s": sp.start, "tr": sp.track,
        },
        sort_keys=True, separators=(",", ":"), default=str,
    )


def _make_span(**kw):
    from repro.obs import Span

    sp = Span.__new__(Span)
    sp.name = kw.get("name", "req")
    sp.cat = kw.get("cat", "kernel")
    sp.track = kw.get("track", "gpu0")
    sp.start = kw.get("start", 1.25)
    sp.end = kw.get("end", 2.5)
    sp.span_id = kw.get("span_id", 7)
    sp.parent_id = kw.get("parent_id", None)
    sp.run_id = kw.get("run_id", 1)
    sp.run_label = kw.get("run_label", "run")
    sp.args = kw.get("args", None)
    return sp


class TestSpanRecordEncoder:
    def test_byte_identical_basic(self):
        from repro.obs.stream import _span_record

        sp = _make_span()
        assert _span_record(sp) == _reference_record(sp)

    def test_byte_identical_edge_cases(self):
        from repro.obs.stream import _span_record

        cases = [
            _make_span(end=None),  # unfinished span
            _make_span(parent_id=3),
            _make_span(args={"z": 1, "a": [1.5, "x"], "m": None}),
            _make_span(name='quo"te\\back\nnl', run_label="π-label"),
            _make_span(start=0.1 + 0.2, end=1e-12),  # float repr corners
            _make_span(start=3.0, end=1234567.0),
        ]
        for sp in cases:
            assert _span_record(sp) == _reference_record(sp), sp.name

    def test_byte_identical_numpy_scalars(self):
        np = pytest.importorskip("numpy")
        from repro.obs.stream import _span_record

        sp = _make_span(start=np.float64(0.406), end=np.float64(12.75))
        rec = _span_record(sp)
        assert rec == _reference_record(sp)
        assert "np.float64" not in rec
        json.loads(rec)  # stays valid JSON


# ---------------------------------------------------------------------------
# End-to-end: byte-determinism and ledger reconciliation
# ---------------------------------------------------------------------------


def _small_run(telemetry, profile_hz=None):
    """One seeded two-stream experiment; optionally self-profiled."""
    profiler = None
    if profile_hz is not None:
        telemetry.perf = ZoneProfiler()
        if profile_hz > 0:
            profiler = SamplingProfiler(hz=profile_hz, perf=telemetry.perf)
            profiler.start()
    try:
        run = run_stream_experiment(
            system_factories()["GMin-Strings"],
            [
                exponential_stream(app_by_short("BS"), RandomStream(3, "perf"), 4, 1.2),
                exponential_stream(app_by_short("GA"), RandomStream(4, "perf"), 3, 1.2),
            ],
            build_small_server,
            label="perf-det",
            telemetry=telemetry,
        )
    finally:
        if profiler is not None:
            profiler.stop()
    return run


def _sim_fingerprint(telemetry, run):
    """Everything simulated: per-request results, spans, decisions."""
    # Span ids (like request ids) come from a process-global counter, so
    # fingerprint the sim-timed fields only.
    spans = sorted(
        (sp.name, sp.cat, sp.track, sp.start, sp.end) for sp in telemetry.spans
    )
    decisions = [
        (p.app_name, p.policy, p.chosen_gid, sorted(p.scores.items()))
        for p in telemetry.decisions.placements
    ]
    # request_id is a process-global counter (differs between back-to-back
    # runs in one process); everything sim-timed must match exactly.
    results = [(r.app, r.arrival_s, r.start_s, r.finish_s) for r in run.results]
    return {"spans": spans, "decisions": decisions, "results": results}


class TestProfiledRunDeterminism:
    def test_profile_on_vs_off_sim_results_identical(self):
        tel_off = Telemetry()
        run_off = _small_run(tel_off, profile_hz=None)
        tel_on = Telemetry()
        run_on = _small_run(tel_on, profile_hz=400)

        assert _sim_fingerprint(tel_on, run_on) == _sim_fingerprint(tel_off, run_off)
        # And profiling actually happened on the profiled side.
        assert tel_on.perf.zones["sim.kernel"].calls >= 1
        assert "backend.issue" in tel_on.perf.zones

    def test_metrics_dict_carries_perf_section_only_when_profiled(self):
        tel = Telemetry()
        _small_run(tel, profile_hz=0)
        doc = metrics_dict(tel)
        assert doc["perf"]["total_self_s"] > 0
        assert any(z["zone"] == "sim.kernel" for z in doc["perf"]["zones"])

        tel_plain = Telemetry()
        _small_run(tel_plain, profile_hz=None)
        assert metrics_dict(tel_plain)["perf"] is None

    def test_ledger_reconciles_with_harness_wall_clock(self):
        tel = Telemetry()
        _small_run(tel, profile_hz=0)
        wall = tel.histogram("harness.wall_s", label="perf-det").sum
        profiled = tel.perf.total_self_s()
        assert wall > 0
        # The zone stack brackets env.run, which is what harness.wall_s
        # times; allow generous slack for interpreter noise around it.
        assert profiled <= wall * 1.05
        assert profiled >= wall * 0.5


class TestKernelHealthGauges:
    def test_events_processed_and_queue_depth_accumulate(self):
        from repro.sim.core import Environment

        env = Environment()
        assert env.events_processed == 0
        done = []
        def proc():
            yield env.timeout(1.0)
            done.append(env.now)
            yield env.timeout(1.0)
        env.process(proc())
        assert env.queue_depth >= 1
        env.run()
        assert done == [1.0]
        assert env.events_processed >= 2
        assert env.queue_depth == 0

    def test_sampler_records_sim_speed_series(self):
        from repro.obs import Sampler

        tel = Telemetry()
        tel.sampler = Sampler(interval_s=1.0)
        _small_run(tel, profile_hz=None)
        speedup = [
            s for s in tel.series.values() if s.name == "sim.speedup"
        ]
        events_ps = [
            s for s in tel.series.values() if s.name == "sim.events_ps"
        ]
        qdepth = [
            s for s in tel.series.values() if s.name == "sim.queue_depth"
        ]
        assert speedup and events_ps and qdepth
        assert all(len(s) > 0 for s in speedup + events_ps + qdepth)
        # Wall-clock-valued: positive sim-speed, non-negative event rate.
        for s in speedup:
            assert all(v > 0 for _t, v in s.points())
        gauge = tel.gauge("sim.events_processed", run="perf-det")
        assert gauge.value > 0

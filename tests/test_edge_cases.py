"""Edge-case tests across the stack: failure propagation, teardown races,
destroyed-handle misuse."""

import pytest

from repro.sim import Environment, Interrupt, Resource, SimulationError
from repro.simgpu import CopyKind, GpuDevice, TESLA_C2050, KernelOp
from repro.cuda import CudaError, CudaErrorCode, HostProcess


# -- condition failure propagation -----------------------------------------------


def test_all_of_fails_fast_on_member_failure():
    env = Environment()
    ok = env.event()
    bad = env.event()

    def waiter(env):
        try:
            yield env.all_of([ok, bad])
        except ValueError as exc:
            return f"caught {exc}"

    def firer(env):
        yield env.timeout(1.0)
        bad.fail(ValueError("member"))
        yield env.timeout(1.0)
        ok.succeed()

    w = env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert w.value == "caught member"


def test_any_of_propagates_failure_too():
    env = Environment()
    bad = env.event()

    def waiter(env):
        try:
            yield env.any_of([bad, env.timeout(10.0)])
        except RuntimeError:
            return env.now

    def firer(env):
        yield env.timeout(2.0)
        bad.fail(RuntimeError("x"))

    w = env.process(waiter(env))
    env.process(firer(env))
    env.run(until=20.0)
    assert w.value == 2.0


def test_condition_rejects_cross_environment_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        env1.all_of([env1.event(), env2.event()])


def test_process_failure_propagates_to_waiting_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            return "handled"

    p = env.process(parent(env))
    env.run()
    assert p.value == "handled"


def test_unwaited_process_failure_crashes_run():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise KeyError("inner")

    env.process(child(env))
    with pytest.raises(SimulationError):
        env.run()


# -- interrupts around resources ------------------------------------------------------


def test_interrupt_while_queued_on_resource_releases_claim():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def victim(env):
        req = res.request()
        try:
            yield req
        except Interrupt:
            req.cancel()
            return "bailed"

    def interrupter(env, v):
        yield env.timeout(1.0)
        v.interrupt()

    def third(env):
        yield env.timeout(2.0)
        with res.request() as req:
            yield req
            got.append(env.now)

    env.process(holder(env))
    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.process(third(env))
    env.run()
    assert v.value == "bailed"
    assert got == [10.0]  # third got the slot right when holder released


# -- device teardown races --------------------------------------------------------------


def test_destroy_context_while_other_context_waiting():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx1 = dev.create_context(owner="a")
    ctx2 = dev.create_context(owner="b")
    s1, s2 = ctx1.create_stream(), ctx2.create_stream()
    finish = []

    def user1(env):
        yield dev.submit(s1, KernelOp(flops=103.0, bytes_accessed=0.001))
        dev.destroy_context(ctx1)

    def user2(env):
        yield env.timeout(0.01)  # arrive while ctx1 resident
        yield dev.submit(s2, KernelOp(flops=10.3, bytes_accessed=0.001))
        finish.append(env.now)

    env.process(user1(env))
    env.process(user2(env))
    env.run()
    assert finish and finish[0] > 0.1  # ran after ctx1's kernel + switch


def test_memcpy_async_on_destroyed_stream_rejected():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    proc = HostProcess(env, [dev])
    t = proc.spawn_thread()
    s = t.stream_create()
    t.stream_destroy(s)
    with pytest.raises(CudaError) as e:
        t.memcpy_async(1024, CopyKind.H2D, stream=s)
    assert e.value.code == CudaErrorCode.INVALID_RESOURCE_HANDLE


def test_launch_on_destroyed_stream_rejected():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    proc = HostProcess(env, [dev])
    t = proc.spawn_thread()
    s = t.stream_create()
    t.stream_destroy(s)
    with pytest.raises(CudaError):
        t.launch_kernel(1.0, 0.001, stream=s)


def test_device_malloc_negative_rejected():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="a")
    with pytest.raises(ValueError):
        dev.malloc(ctx, -1)


def test_store_negative_capacity_event_semantics():
    """Bounded store admits put only after space frees (FIFO preserved)."""
    from repro.sim import Store

    env = Environment()
    store = Store(env, capacity=2)
    log = []

    def producer(env):
        for i in range(4):
            yield store.put(i)
            log.append(("put", i, env.now))

    def consumer(env):
        yield env.timeout(1.0)
        for _ in range(4):
            item = yield store.get()
            log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    puts = [e for e in log if e[0] == "put"]
    gots = [e for e in log if e[0] == "got"]
    assert [i for _, i, _ in gots] == [0, 1, 2, 3]
    assert puts[2][2] == 1.0  # third put blocked until first get

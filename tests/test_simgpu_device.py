"""Unit tests for GpuDevice: residency, streams, memory, overlap."""

import pytest

from repro.sim import Environment
from repro.simgpu import (
    QUADRO_2000,
    TESLA_C2050,
    CopyKind,
    CopyOp,
    GpuDevice,
    GpuOutOfMemoryError,
    KernelOp,
)


def kernel_100ms(occupancy=1.0, tag=""):
    # 103 GFLOP on a C2050 = 100 ms
    return KernelOp(flops=103.0, bytes_accessed=0.001, occupancy=occupancy, tag=tag)


def copy_10ms(kind=CopyKind.H2D):
    return CopyOp(nbytes=58_000_000, kind=kind, pinned=True)


def test_stream_ordering_serializes_ops():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    stream = ctx.create_stream()
    finish = []

    def go(env):
        e1 = dev.submit(stream, kernel_100ms())
        e2 = dev.submit(stream, kernel_100ms())
        yield e1
        finish.append(env.now)
        yield e2
        finish.append(env.now)

    env.process(go(env))
    env.run()
    assert finish[0] == pytest.approx(0.1, rel=1e-3)
    assert finish[1] == pytest.approx(0.2, rel=1e-3)


def test_different_streams_same_context_overlap():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    s1, s2 = ctx.create_stream(), ctx.create_stream()
    finish = []

    def go(env):
        e1 = dev.submit(s1, kernel_100ms(occupancy=0.4))
        e2 = dev.submit(s2, kernel_100ms(occupancy=0.4))
        yield env.all_of([e1, e2])
        finish.append(env.now)

    env.process(go(env))
    env.run()
    # Full overlap (modulo the small co-residency penalty): ~100 ms, not 200.
    assert finish[0] == pytest.approx(0.1 * (1 + TESLA_C2050.concurrency_penalty), rel=1e-2)


def test_copy_overlaps_kernel_same_context():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    s1, s2 = ctx.create_stream(), ctx.create_stream()
    finish = []

    def go(env):
        e1 = dev.submit(s1, kernel_100ms())
        e2 = dev.submit(s2, copy_10ms())
        yield env.all_of([e1, e2])
        finish.append(env.now)

    env.process(go(env))
    env.run()
    assert finish[0] == pytest.approx(0.1, rel=1e-2)  # hidden behind the kernel


def test_h2d_d2h_overlap_on_dual_engine_card():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    s1, s2 = ctx.create_stream(), ctx.create_stream()
    done = []

    def go(env):
        e1 = dev.submit(s1, copy_10ms(CopyKind.H2D))
        e2 = dev.submit(s2, copy_10ms(CopyKind.D2H))
        yield env.all_of([e1, e2])
        done.append(env.now)

    env.process(go(env))
    env.run()
    assert done[0] == pytest.approx(0.01, rel=1e-2)


def test_h2d_d2h_serialize_on_single_engine_card():
    env = Environment()
    dev = GpuDevice(env, QUADRO_2000)
    ctx = dev.create_context(owner="p1")
    s1, s2 = ctx.create_stream(), ctx.create_stream()
    done = []

    def go(env):
        e1 = dev.submit(s1, copy_10ms(CopyKind.H2D))
        e2 = dev.submit(s2, copy_10ms(CopyKind.D2H))
        yield env.all_of([e1, e2])
        done.append(env.now)

    env.process(go(env))
    env.run()
    assert done[0] == pytest.approx(0.02, rel=1e-2)


def test_separate_contexts_serialize_with_switch_overhead():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx1 = dev.create_context(owner="p1")
    ctx2 = dev.create_context(owner="p2")
    s1 = ctx1.create_stream()
    s2 = ctx2.create_stream()
    finish = {}

    def go(env, stream, name):
        yield dev.submit(stream, kernel_100ms(occupancy=0.4))
        finish[name] = env.now

    env.process(go(env, s1, "a"))
    env.process(go(env, s2, "b"))
    env.run()
    # No overlap across contexts: second finishes ~0.2s + a switch.
    assert finish["a"] == pytest.approx(0.1, rel=1e-2)
    assert finish["b"] >= 0.2
    assert dev.ctx_switches >= 1


def test_context_timeslice_forces_alternation():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx1 = dev.create_context(owner="p1")
    ctx2 = dev.create_context(owner="p2")
    s1, s2 = ctx1.create_stream(), ctx2.create_stream()
    order = []

    def chain(env, stream, name, n):
        for i in range(n):
            yield dev.submit(stream, KernelOp(flops=10.3, bytes_accessed=0.0001))
            order.append(name)

    env.process(chain(env, s1, "a", 8))
    env.process(chain(env, s2, "b", 8))
    env.run()
    # Both made progress interleaved: "b" kernels complete before all "a".
    first_b = order.index("b")
    assert first_b < 8
    assert dev.ctx_switches >= 2


def test_same_context_reacquire_costs_no_switch():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    s = ctx.create_stream()

    def go(env):
        for _ in range(5):
            yield dev.submit(s, KernelOp(flops=10.3, bytes_accessed=0.0001))
            yield env.timeout(0.05)  # long gaps between ops

    env.process(go(env))
    env.run()
    assert dev.ctx_switches == 0


def test_malloc_and_free_track_capacity():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    ptr = dev.malloc(ctx, 1024)
    assert dev.allocated_bytes == 1024
    assert ctx.allocated_bytes == 1024
    dev.free(ctx, ptr)
    assert dev.allocated_bytes == 0


def test_malloc_oom():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050.scaled(mem_capacity_mb=1))
    ctx = dev.create_context(owner="p1")
    dev.malloc(ctx, 512 * 1024)
    with pytest.raises(GpuOutOfMemoryError):
        dev.malloc(ctx, 600 * 1024)


def test_free_unknown_pointer_rejected():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    with pytest.raises(ValueError):
        dev.free(ctx, 0xDEAD)


def test_destroy_context_releases_memory():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    dev.malloc(ctx, 4096)
    dev.destroy_context(ctx)
    assert dev.allocated_bytes == 0
    assert ctx.destroyed


def test_submit_to_destroyed_context_rejected():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    s = ctx.create_stream()
    dev.destroy_context(ctx)
    with pytest.raises(RuntimeError):
        dev.submit(s, kernel_100ms())


def test_busy_fraction_counts_any_engine():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    s = ctx.create_stream()

    def go(env):
        yield dev.submit(s, kernel_100ms())
        yield env.timeout(0.1)

    env.process(go(env))
    env.run()
    assert dev.busy_fraction(0.0, 0.2) == pytest.approx(0.5, rel=2e-2)


def test_op_counters():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    s = ctx.create_stream()

    def go(env):
        yield dev.submit(s, kernel_100ms())
        yield dev.submit(s, copy_10ms())

    env.process(go(env))
    env.run()
    assert dev.kernels_completed == 1
    assert dev.copies_completed == 1


def test_stream_idle_and_synchronize_event():
    env = Environment()
    dev = GpuDevice(env, TESLA_C2050)
    ctx = dev.create_context(owner="p1")
    s = ctx.create_stream()
    assert s.idle
    assert s.synchronize_event() is None

    def go(env):
        ev = dev.submit(s, kernel_100ms())
        assert not s.idle
        sync = s.synchronize_event()
        assert sync is ev
        yield sync
        assert s.idle

    env.process(go(env))
    env.run()

"""End-to-end observability: spans, decision log and exporters against a
real Strings experiment (ISSUE 1 acceptance checks)."""

import json

import pytest

import repro.obs as obs
from repro.obs import Telemetry, metrics_dict, summary_table, to_chrome_trace
from repro.obs.spans import children_of, phase_breakdown, request_spans
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.apps import app_by_short
from repro.cluster import build_small_server
from repro.core.arbiter import PolicyArbiter
from repro.core.feedback import AppProfile
from repro.core.policies import GMin, MBF
from repro.core.systems import StringsSystem
from repro.harness.runner import run_stream_experiment, system_factories
from repro.workloads import exponential_stream


@pytest.fixture
def gwtmin_run():
    """A small GWtMin-Strings stream experiment under a live registry."""
    tel = Telemetry()
    facts = system_factories()
    streams = [
        exponential_stream(app_by_short("BS"), RandomStream(3, "obs"), 4, 1.2),
        exponential_stream(app_by_short("GA"), RandomStream(4, "obs"), 3, 1.2),
    ]
    run = run_stream_experiment(
        facts["GWtMin-Strings"], streams, build_small_server,
        label="GWtMin-Strings", telemetry=tel,
    )
    return tel, run


def test_placement_logged_per_admitted_request(gwtmin_run):
    tel, run = gwtmin_run
    assert len(run.results) == 7
    placements = tel.decisions.placements
    # One Target-GPU-Selector decision per admitted request.
    assert len(placements) == len(run.results)
    gids = {0, 1}  # build_small_server: one node, two GPUs
    for p in placements:
        assert p.policy == "GWtMin"
        assert p.chosen_gid in gids
        assert p.app_name in ("BS", "GA")
        assert set(p.scores) == gids
        # GWtMin picks the best weighted-load score it saw.
        assert p.scores[p.chosen_gid] == pytest.approx(min(p.scores.values()))
    assert set(tel.decisions.policy_mix()) == {"GWtMin"}
    assert len(tel.decisions.placements_for("BS")) == 4
    mix = tel.decisions.by_gid()
    assert sum(len(v) for v in mix.values()) == 7


def test_request_spans_cover_every_request(gwtmin_run):
    tel, run = gwtmin_run
    roots = request_spans(tel)
    assert len(roots) == len(run.results)
    assert all(s.finished for s in roots)
    # Root durations equal the drivers' reported completion times.
    assert sorted(round(s.duration, 9) for s in roots) == sorted(
        round(r.completion_s, 9) for r in run.results
    )
    # Each request has at least bind + kernel-launch + memcpy children.
    for root in roots:
        cats = {c.cat for c in children_of(tel, root)}
        assert "bind" in cats
        assert "kernel" in cats  # session-side kernel-launch op spans
        assert "copy" in cats
    breakdown = phase_breakdown(tel)
    assert set(breakdown) == {"BS", "GA"}
    assert all(b.get("kernel", 0) > 0 for b in breakdown.values())


def test_engine_spans_land_on_gpu_tracks(gwtmin_run):
    tel, _ = gwtmin_run
    tracks = {s.track for s in tel.spans}
    assert {"GPU0/SM", "GPU1/SM"} & tracks  # at least one SM saw kernels
    assert any(t.endswith(("/H2D", "/D2H", "/DMA")) for t in tracks)


def test_chrome_trace_roundtrips_through_json(gwtmin_run):
    tel, run = gwtmin_run
    doc = json.loads(json.dumps(to_chrome_trace(tel)))
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"

    xs = [e for e in events if e["ph"] == "X"]
    assert xs
    for e in xs:
        assert e["ts"] >= 0
        assert e["dur"] >= 0
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)

    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == len(run.results)  # one per placement
    assert all(e["args"]["policy"] == "GWtMin" for e in instants)

    meta = [e for e in events if e["ph"] == "M"]
    procs = [m for m in meta if m["name"] == "process_name"]
    assert len(procs) == 1  # a single labelled run
    assert "GWtMin-Strings" in procs[0]["args"]["name"]
    threads = {m["args"]["name"] for m in meta if m["name"] == "thread_name"}
    assert {"app:BS", "app:GA", "scheduler"} <= threads


def test_metrics_dict_reflects_run(gwtmin_run):
    tel, run = gwtmin_run
    m = json.loads(json.dumps(metrics_dict(tel)))
    assert m["counters"]["mapper.bindings{policy=GWtMin}"] == len(run.results)
    assert m["decisions"]["placements"] == len(run.results)
    assert m["decisions"]["policy_mix"] == {"GWtMin": len(run.results)}
    comp = m["histograms"]["request.completion_s{app=BS}"]
    assert comp["count"] == 4
    assert comp["mean"] > 0
    assert m["histograms"]["harness.wall_s{label=GWtMin-Strings}"]["count"] == 1
    assert m["gauges"]["harness.sim_time_s{label=GWtMin-Strings}"]["value"] == (
        pytest.approx(run.sim_time_s)
    )
    # Adopted dispatch-gate counters surface per GID.
    assert any(k.startswith("dispatch.wakes{gid=") for k in m["counters"])


def test_summary_table_renders(gwtmin_run):
    tel, run = gwtmin_run
    text = summary_table(tel)
    assert f"requests traced: {len(run.results)}" in text
    assert "GWtMin" in text
    assert "placements per GID" in text


def test_arbiter_switch_recorded():
    tel = Telemetry()
    env = Environment(telemetry=tel)
    nodes, net = build_small_server(env)
    system = StringsSystem(env, nodes, net, balancing=GMin())
    arb = PolicyArbiter(
        system.mapper, GMin(), MBF(system.sft), min_profiles=3, min_distinct_apps=2
    )
    for name in ("MC", "MC", "DC", "DC"):
        arb.deliver_feedback(
            AppProfile(app_name=name, runtime_s=5.0, gpu_time_s=2.0,
                       transfer_time_s=0.5, bytes_accessed_gb=10.0)
        )
    assert arb.switched
    assert len(tel.decisions.switches) == 1
    sw = tel.decisions.switches[0]
    assert sw.from_policy == "GMin"
    assert sw.to_policy == "MBF"
    assert sw.profiles_seen == 3
    assert sw.distinct_apps == 2


def test_cli_trace_and_metrics_flags(tmp_path, capsys):
    from repro.harness.__main__ import main

    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert main(["fig2", "--scale", "quick",
                 "--trace", str(trace), "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "observability summary" in out
    # The flags reset the default registry on exit.
    assert not obs.current().enabled

    doc = json.loads(trace.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
    m = json.loads(metrics.read_text())
    assert m["spans"] > 0
    assert m["runs"] >= 1

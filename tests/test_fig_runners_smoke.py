"""Smoke tests: every figure runner produces sane output at tiny scale.

These complement the benchmark suite (which runs the figures at CI scale
with shape assertions) by checking the runner *APIs* quickly: subset
parameters, result dictionary structure, positive values.
"""

import pytest

from repro.harness.runner import SCALE_QUICK

TINY = SCALE_QUICK.scaled(
    requests_per_stream=3, load_factor=1.2, pair_load_factor=2.0,
    fairness_window_s=20.0,
)


def test_fig9_runner_subset():
    from repro.harness.fig9 import run

    data = run(TINY, apps=["GA"], policies=["GRR-Strings", "GRR-Rain"])
    assert set(data) == {"GRR-Strings", "GRR-Rain"}
    for row in data.values():
        assert set(row) == {"GA", "avg"}
        assert row["avg"] > 0


def test_fig10_runner_subset():
    from repro.harness.fig10 import run

    data = run(TINY, pair_labels=("G",), policies=("GRR-Strings",))
    assert data["GRR-Strings"]["G"] > 0
    assert data["GRR-Strings"]["avg"] > 0


def test_fig11_runner_subset():
    from repro.harness.fig11 import run

    data = run(TINY, pair_labels=("G",), systems=("TFS-Strings",))
    assert 0 < data["TFS-Strings"]["G"] <= 1.0
    assert 0 < data["TFS-Strings"]["avg"] <= 1.0
    assert data["TFS-Strings"]["max"] >= data["TFS-Strings"]["avg"]


def test_fig12_runner_subset():
    from repro.harness.fig12 import run

    data = run(TINY, pair_labels=("G",), policies=("GWtMin+PS-Strings",))
    assert data["GWtMin+PS-Strings"]["G"] > 0
    assert "_means" in data


def test_fig13_runner_subset():
    from repro.harness.fig13 import run

    data = run(TINY, pair_labels=("G",), policies=("PS-Strings",))
    assert data["PS-Strings"]["G"] > 0


def test_fig14_runner_subset():
    from repro.harness.fig14 import run

    data = run(TINY, pair_labels=("G",), policies=("RTF-Strings",))
    assert data["RTF-Strings"]["G"] > 0


def test_fig15_runner_subset():
    from repro.harness.fig15 import run

    data = run(
        TINY, pair_labels=("G",), policies=("MBF-Strings",),
        include_cuda_headline=True,
    )
    assert data["MBF-Strings"]["G"] > 0
    assert data["mbf_vs_cuda_avg"] > 0


def test_ablations_runner_structure():
    from repro.harness.ablations import ablate_arbiter_cold_start

    cold = ablate_arbiter_cold_start()
    assert cold["switched"] is True
    assert cold["transitions"][0][1] == "GMin"
    assert cold["transitions"][-1][1] == "MBF"

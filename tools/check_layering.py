#!/usr/bin/env python
"""Import-layering lint for the repro package.

The codebase is a strict layer stack (DESIGN.md §12): every package may
import only packages of *strictly lower* rank (plus itself).  Back-edges
— a lower layer importing a higher one — are how "the simulator knows
about the scheduler" bugs start, so CI fails on any.

    rank  layer        may see
    ----  -----------  ------------------------------------------------
      1   telemetry    (nothing — the instrument kernel)
      2   sim          telemetry
      3   simgpu       sim, telemetry
      4   cuda         simgpu, ...
      5   cluster      cuda, ...
      6   remoting     cluster, ...
      7   apps         remoting, ...
      8   workloads    apps, ...
      8   metrics      apps, ...
      9   traffic      workloads, apps, sim (generation, never cores)
     10   core         remoting, cluster, cuda, ...
     11   obs          telemetry (analysis layer over the kernel)
     12   faults       core, apps, ...
     13   harness      everything

Equal-rank packages (workloads/metrics) are siblings and may not import
each other.  Run:  python tools/check_layering.py  (exit 1 on violation).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Layer rank of each top-level repro subpackage.  A module in package P
#: may import repro.Q only when RANK[Q] < RANK[P] (or Q == P).
RANK = {
    "telemetry": 1,
    "sim": 2,
    "simgpu": 3,
    "cuda": 4,
    "cluster": 5,
    "remoting": 6,
    "apps": 7,
    "workloads": 8,
    "metrics": 8,
    "traffic": 9,
    "core": 10,
    "obs": 11,
    "faults": 12,
    "harness": 13,
}

REPRO_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _imported_repro_packages(tree: ast.AST):
    """Yield (lineno, top-level repro subpackage) for every repro import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield node.lineno, parts[1]
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: stays inside its package
                continue
            if node.module:
                parts = node.module.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield node.lineno, parts[1]
                elif parts == ["repro"]:
                    # ``from repro import X``: X may be a subpackage.
                    for alias in node.names:
                        if alias.name in RANK:
                            yield node.lineno, alias.name


def check(root: Path = REPRO_ROOT):
    """Return a list of human-readable violation strings."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        package = rel.parts[0] if len(rel.parts) > 1 else None
        if package is None or package not in RANK:
            # Top-level modules (repro/__init__.py) may import anything.
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, target in _imported_repro_packages(tree):
            if target == package:
                continue
            if target not in RANK:
                violations.append(
                    f"{path}:{lineno}: import of unranked package repro.{target}"
                    " (add it to RANK in tools/check_layering.py)"
                )
            elif RANK[target] >= RANK[package]:
                violations.append(
                    f"{path}:{lineno}: back-edge: {package} (rank "
                    f"{RANK[package]}) imports repro.{target} (rank "
                    f"{RANK[target]}) — layers may only import strictly "
                    "lower ranks"
                )
    return violations


def main() -> int:
    violations = check()
    if violations:
        print(f"layering lint: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        return 1
    print("layering lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Import-layering lint for the repro package.

The codebase is a strict layer stack (DESIGN.md §12): every package may
import only packages of *strictly lower* rank (plus itself).  Back-edges
— a lower layer importing a higher one — are how "the simulator knows
about the scheduler" bugs start, so CI fails on any.

    rank  layer        may see
    ----  -----------  ------------------------------------------------
      1   telemetry    (nothing — the instrument kernel)
      2   sim          telemetry
      3   simgpu       sim, telemetry
      4   cuda         simgpu, ...
      5   cluster      cuda, ...
      6   remoting     cluster, ...
      7   apps         remoting, ...
      8   workloads    apps, ...
      8   metrics      apps, ...
      9   traffic      workloads, apps, sim (generation, never cores)
     10   core         remoting, cluster, cuda, ...
     11   obs          telemetry (analysis layer over the kernel)
     12   faults       core, apps, ...
     13   harness      everything

Equal-rank packages (workloads/metrics) are siblings and may not import
each other.  Run:  python tools/check_layering.py  (exit 1 on violation).

Within ``repro.harness`` the same discipline applies one level down
(DESIGN.md §16): ``format`` and ``runner`` are the leaves, ``registry``
builds the experiment protocol over them, ``pairsweep`` layers its grid
experiment over the registry, the figure/table/extension modules sit
above that, and ``__main__`` dispatches over everything.  The registry
deliberately reaches experiment modules only through
``importlib.import_module`` at discovery time — a *call*, not an import
statement — so no static back-edge exists.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Layer rank of each top-level repro subpackage.  A module in package P
#: may import repro.Q only when RANK[Q] < RANK[P] (or Q == P).
RANK = {
    "telemetry": 1,
    "sim": 2,
    "simgpu": 3,
    "cuda": 4,
    "cluster": 5,
    "remoting": 6,
    "apps": 7,
    "workloads": 8,
    "metrics": 8,
    "traffic": 9,
    "core": 10,
    "obs": 11,
    "faults": 12,
    "harness": 13,
}

#: Intra-package layer rank of each repro.harness module.  A harness
#: module M may import repro.harness.N only when HARNESS_RANK[N] <
#: HARNESS_RANK[M]; equal ranks are siblings and may not import each
#: other.  ``__init__`` is the thin facade over the runner.
HARNESS_RANK = {
    "format": 1,
    "runner": 2,
    "__init__": 3,
    "registry": 3,
    "pairsweep": 4,
    "table1": 5,
    "fig1": 5,
    "fig2": 5,
    "fig9": 5,
    "fig10": 5,
    "fig11": 5,
    "fig12": 5,
    "fig13": 5,
    "fig14": 5,
    "fig15": 5,
    "ablations": 5,
    "chaos": 5,
    "scale": 5,
    "scaleout": 5,
    "__main__": 6,
}

REPRO_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _imported_repro_packages(tree: ast.AST):
    """Yield (lineno, top-level repro subpackage) for every repro import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield node.lineno, parts[1]
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: stays inside its package
                continue
            if node.module:
                parts = node.module.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield node.lineno, parts[1]
                elif parts == ["repro"]:
                    # ``from repro import X``: X may be a subpackage.
                    for alias in node.names:
                        if alias.name in RANK:
                            yield node.lineno, alias.name


def _imported_harness_modules(tree: ast.AST):
    """Yield (lineno, harness submodule) for every repro.harness import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[:2] == ["repro", "harness"] and len(parts) > 2:
                    yield node.lineno, parts[2]
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            parts = node.module.split(".")
            if parts[:2] != ["repro", "harness"]:
                continue
            if len(parts) > 2:
                yield node.lineno, parts[2]
            else:
                # ``from repro.harness import X``: X may be a submodule
                # (registry), or a name re-exported by __init__.
                for alias in node.names:
                    if alias.name in HARNESS_RANK:
                        yield node.lineno, alias.name
                    else:
                        yield node.lineno, "__init__"


def _check_harness(path: Path, module: str, tree: ast.AST, violations):
    """Apply the intra-harness layer ranks to one harness module."""
    rank = HARNESS_RANK.get(module)
    if rank is None:
        violations.append(
            f"{path}: unranked harness module repro.harness.{module}"
            " (add it to HARNESS_RANK in tools/check_layering.py)"
        )
        return
    for lineno, target in _imported_harness_modules(tree):
        if target == module:
            continue
        if target not in HARNESS_RANK:
            violations.append(
                f"{path}:{lineno}: import of unranked harness module "
                f"repro.harness.{target} (add it to HARNESS_RANK in "
                "tools/check_layering.py)"
            )
        elif HARNESS_RANK[target] >= rank:
            violations.append(
                f"{path}:{lineno}: harness back-edge: {module} (rank "
                f"{rank}) imports repro.harness.{target} (rank "
                f"{HARNESS_RANK[target]}) — harness modules may only "
                "import strictly lower ranks"
            )


def check(root: Path = REPRO_ROOT):
    """Return a list of human-readable violation strings."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        package = rel.parts[0] if len(rel.parts) > 1 else None
        if package is None or package not in RANK:
            # Top-level modules (repro/__init__.py) may import anything.
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        if package == "harness" and len(rel.parts) == 2:
            _check_harness(path, rel.parts[1][:-3], tree, violations)
        for lineno, target in _imported_repro_packages(tree):
            if target == package:
                continue
            if target not in RANK:
                violations.append(
                    f"{path}:{lineno}: import of unranked package repro.{target}"
                    " (add it to RANK in tools/check_layering.py)"
                )
            elif RANK[target] >= RANK[package]:
                violations.append(
                    f"{path}:{lineno}: back-edge: {package} (rank "
                    f"{RANK[package]}) imports repro.{target} (rank "
                    f"{RANK[target]}) — layers may only import strictly "
                    "lower ranks"
                )
    return violations


def main() -> int:
    violations = check()
    if violations:
        print(f"layering lint: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        return 1
    print("layering lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
